"""OS and system background-noise models (§5.1 context).

Two layers, both deterministic given the machine seed:

* **Fine-grained jitter** — per-time-slice multiplicative speed variation
  modelling cache effects, SMT interference and short OS activity.  This is
  what makes 10 µs-resolution sensor readings look chaotic (Fig. 12) while
  1000 µs averages are smooth.
* **Periodic interrupts** — the classic OS timer tick / daemon activity:
  every ``period`` µs the node loses ``duration`` µs of compute entirely.

Episode-style disturbances (contention from an injected noiser, network
congestion, a bad node) are *faults*, not noise — see
:mod:`repro.sim.faults`.

Draws are generated **chunked**: one numpy ``Generator`` produces a whole
chunk of slices (or spike milliseconds) at once and the resulting arrays
are cached.  A single scalar query and a vectorized rank-axis query
(:meth:`NodeNoise.speed_multipliers`) read the *same* cached arrays, which
is what makes the lockstep tier's vectorized clocks bit-identical to the
per-rank path: there is exactly one draw per (node, slice) no matter how
many ranks observe it or in which order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(slots=True)
class NoiseConfig:
    """Background-noise parameters for every node of a machine."""

    #: std-dev of the per-slice lognormal speed jitter (0 disables)
    jitter_sigma: float = 0.08
    #: jitter correlation slice length (µs): speed is resampled per slice
    jitter_slice_us: float = 50.0
    #: OS interrupt period (µs); 0 disables periodic interrupts
    interrupt_period_us: float = 4000.0
    #: compute lost per interrupt (µs)
    interrupt_duration_us: float = 18.0
    #: probability per millisecond of a long daemon spike
    spike_rate_per_ms: float = 0.003
    #: daemon spike duration (µs)
    spike_duration_us: float = 300.0


#: slices drawn per jitter chunk (power of two: chunk = k >> 9, lane = k & 511)
_JITTER_CHUNK = 512
#: milliseconds drawn per spike chunk
_SPIKE_CHUNK = 256

# Noise draws are pure functions of (node seed, slice index) — there is no
# stream state — so they can be generated a chunk at a time and served from
# a cache instead of building a numpy Generator per slice.  Shared across
# NodeNoise instances: ranks co-located on a node draw identical noise and
# hit the same entries.
_JITTER_CACHE: dict[tuple[int, int, float], np.ndarray] = {}
_SPIKE_CACHE: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}

#: SeedSequence stream tags separating the jitter and spike draw families
_JITTER_TAG = 11
_SPIKE_TAG = 13


class NodeNoise:
    """Deterministic noise stream for one node.

    The jitter multiplier for slice ``k`` is a hash-seeded lognormal draw,
    so queries are random-access (no state to replay) and two runs over the
    same machine see identical noise.
    """

    def __init__(self, config: NoiseConfig, seed: int, node_id: int) -> None:
        self.config = config
        self._seed = np.uint64((seed * 1_000_003 + node_id) & 0xFFFFFFFF)

    def _jitter_chunk(self, chunk: int) -> np.ndarray:
        """Jitter multipliers for slices ``[chunk*512, (chunk+1)*512)``."""
        sigma = self.config.jitter_sigma
        key = (int(self._seed), chunk, sigma)
        arr = _JITTER_CACHE.get(key)
        if arr is None:
            rng = np.random.default_rng(
                np.random.SeedSequence([int(self._seed), _JITTER_TAG, chunk])
            )
            # Lognormal centred slightly below 1: noise only ever slows.
            arr = np.exp(-np.abs(rng.normal(0.0, sigma, _JITTER_CHUNK)))
            np.minimum(arr, 1.0, out=arr)
            _JITTER_CACHE[key] = arr
        return arr

    def _spike_chunk(self, chunk: int) -> tuple[np.ndarray, np.ndarray]:
        """(probability, phase) draws for milliseconds in chunk ``chunk``."""
        key = (int(self._seed), chunk)
        draws = _SPIKE_CACHE.get(key)
        if draws is None:
            rng = np.random.default_rng(
                np.random.SeedSequence([int(self._seed), _SPIKE_TAG, chunk])
            )
            pair = rng.random((2, _SPIKE_CHUNK))
            draws = (pair[0], pair[1])
            _SPIKE_CACHE[key] = draws
        return draws

    def speed_multiplier(self, time_us: float) -> float:
        """Instantaneous speed multiplier (<=1 mostly) at ``time_us``."""
        cfg = self.config
        mult = 1.0
        if cfg.jitter_sigma > 0:
            k = int(time_us / cfg.jitter_slice_us)
            mult *= float(self._jitter_chunk(k >> 9)[k & (_JITTER_CHUNK - 1)])
        if cfg.spike_rate_per_ms > 0:
            ms = int(time_us / 1000.0)
            p, frac = self._spike_chunk(ms // _SPIKE_CHUNK)
            i = ms % _SPIKE_CHUNK
            if p[i] < cfg.spike_rate_per_ms:
                start = ms * 1000.0 + float(frac[i]) * 1000.0
                if start <= time_us < start + cfg.spike_duration_us:
                    mult *= 0.25
        return mult

    def speed_multipliers(self, times_us: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`speed_multiplier` over a float64 time array.

        Bit-identical to calling the scalar form per element: both paths
        gather from the same cached chunk arrays and apply the same float
        operations (``1.0 * jitter`` then ``* 0.25`` inside a spike).
        """
        cfg = self.config
        if cfg.jitter_sigma > 0:
            k = (times_us / cfg.jitter_slice_us).astype(np.int64)
            # gathers always copy, so mutating below never touches the cache
            mult = self._gather_jitter(k)
        else:
            mult = np.ones(len(times_us))
        if cfg.spike_rate_per_ms > 0:
            ms = (times_us / 1000.0).astype(np.int64)
            p, frac = self._gather_spikes(ms)
            start = ms * 1000.0 + frac * 1000.0
            active = (
                (p < cfg.spike_rate_per_ms)
                & (start <= times_us)
                & (times_us < start + cfg.spike_duration_us)
            )
            mult[active] *= 0.25
        return mult

    def _gather_jitter(self, k: np.ndarray) -> np.ndarray:
        chunks = k >> 9
        lanes = k & (_JITTER_CHUNK - 1)
        first = int(chunks[0])
        # Lockstep lanes stay nearly synchronized, so one chunk usually
        # covers the whole query — skip the unique/scatter machinery then.
        if int(chunks.max()) == first and int(chunks.min()) == first:
            return self._jitter_chunk(first)[lanes]
        out = np.empty(len(k))
        for chunk in np.unique(chunks):
            sel = chunks == chunk
            out[sel] = self._jitter_chunk(int(chunk))[lanes[sel]]
        return out

    def _gather_spikes(self, ms: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        chunks = ms // _SPIKE_CHUNK
        lanes = ms % _SPIKE_CHUNK
        first = int(chunks[0])
        if int(chunks.max()) == first and int(chunks.min()) == first:
            cp, cf = self._spike_chunk(first)
            return cp[lanes], cf[lanes]
        p = np.empty(len(ms))
        frac = np.empty(len(ms))
        for chunk in np.unique(chunks):
            sel = chunks == chunk
            cp, cf = self._spike_chunk(int(chunk))
            p[sel] = cp[lanes[sel]]
            frac[sel] = cf[lanes[sel]]
        return p, frac

    def interrupt_loss(self, start_us: float, end_us: float) -> float:
        """Total compute time (µs) lost to periodic interrupts in a window."""
        cfg = self.config
        if cfg.interrupt_period_us <= 0 or end_us <= start_us:
            return 0.0
        first = int(start_us // cfg.interrupt_period_us) + 1
        last = int(end_us // cfg.interrupt_period_us)
        n = max(0, last - first + 1)
        return n * cfg.interrupt_duration_us

    def interrupt_losses(self, start_us: np.ndarray, end_us: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`interrupt_loss` over parallel window arrays."""
        cfg = self.config
        if cfg.interrupt_period_us <= 0:
            return np.zeros(len(start_us))
        first = np.floor_divide(start_us, cfg.interrupt_period_us).astype(np.int64) + 1
        last = np.floor_divide(end_us, cfg.interrupt_period_us).astype(np.int64)
        n = np.maximum(0, last - first + 1)
        loss = n * cfg.interrupt_duration_us
        loss[end_us <= start_us] = 0.0
        return loss
