"""Hook interface between the simulator and observation tools.

The vSensor dynamic module, the mpiP-like profiler baseline and the
ITAC-like tracer baseline all observe execution through this interface —
the simulator is tool-agnostic, exactly as a real machine is.
"""

from __future__ import annotations

from repro.sim.pmu import PmuSample


class RuntimeHooks:
    """Override the notifications a tool cares about.  Times are µs."""

    #: set True to additionally receive user-function enter/exit events
    #: (expensive; only full tracers want them)
    wants_function_events: bool = False

    def on_func_enter(self, rank: int, name: str, t: float) -> None:  # pragma: no cover
        pass

    def on_func_exit(self, rank: int, name: str, t: float) -> None:  # pragma: no cover
        pass

    def on_program_start(self, n_ranks: int) -> None:  # pragma: no cover - default no-op
        pass

    def on_program_end(self, rank: int, t: float) -> None:  # pragma: no cover
        pass

    def on_sensor_record(
        self,
        rank: int,
        sensor_id: int,
        t_start: float,
        t_end: float,
        pmu: PmuSample,
    ) -> None:  # pragma: no cover
        """One Tick..Tock execution of an instrumented v-sensor."""

    def on_mpi_begin(self, rank: int, op: str, t: float) -> None:  # pragma: no cover
        pass

    def on_mpi_end(self, rank: int, op: str, t_begin: float, t_end: float, size: float) -> None:  # pragma: no cover
        pass

    def on_io(self, rank: int, op: str, t_begin: float, t_end: float, size: float) -> None:  # pragma: no cover
        pass


class NullHooks(RuntimeHooks):
    """No observation at all (original, uninstrumented runs)."""


class TeeHooks(RuntimeHooks):
    """Fan one event stream out to several tools (e.g. the vSensor runtime
    plus a raw-record collector for offline figure data)."""

    def __init__(self, *hooks: RuntimeHooks) -> None:
        self.hooks = [h for h in hooks if h is not None]
        self.wants_function_events = any(h.wants_function_events for h in self.hooks)

    def on_program_start(self, n_ranks: int) -> None:
        for h in self.hooks:
            h.on_program_start(n_ranks)

    def on_program_end(self, rank: int, t: float) -> None:
        for h in self.hooks:
            h.on_program_end(rank, t)

    def on_sensor_record(self, rank, sensor_id, t_start, t_end, pmu) -> None:
        for h in self.hooks:
            h.on_sensor_record(rank, sensor_id, t_start, t_end, pmu)

    def on_mpi_begin(self, rank, op, t) -> None:
        for h in self.hooks:
            h.on_mpi_begin(rank, op, t)

    def on_mpi_end(self, rank, op, t_begin, t_end, size) -> None:
        for h in self.hooks:
            h.on_mpi_end(rank, op, t_begin, t_end, size)

    def on_io(self, rank, op, t_begin, t_end, size) -> None:
        for h in self.hooks:
            h.on_io(rank, op, t_begin, t_end, size)

    def on_func_enter(self, rank, name, t) -> None:
        for h in self.hooks:
            if h.wants_function_events:
                h.on_func_enter(rank, name, t)

    def on_func_exit(self, rank, name, t) -> None:
        for h in self.hooks:
            if h.wants_function_events:
                h.on_func_exit(rank, name, t)


class RawRecorder(RuntimeHooks):
    """Keeps every probe record — figure-data collection, not production."""

    def __init__(self, ranks: set[int] | None = None) -> None:
        #: restrict collection to these ranks (None = all)
        self.ranks = ranks
        self.records: list[tuple[int, int, float, float, float]] = []

    def on_sensor_record(self, rank, sensor_id, t_start, t_end, pmu) -> None:
        if self.ranks is None or rank in self.ranks:
            self.records.append((rank, sensor_id, t_start, t_end, pmu.instructions))
