"""Fault injection: the performance-variance sources the tool must detect.

Each fault modifies either a node's effective compute/memory speed over a
time window or the network's effective performance.  The case studies map
directly:

* :class:`SlowMemoryNode` — §6.5 / Fig. 21: one node whose memory subsystem
  runs at 55% for the whole run (the "bad node").
* :class:`CpuContention` — §6.4 / Figs. 19–20: an external *noiser* program
  steals CPU from a node set during ``[t0, t1)``.
* :class:`NetworkDegradation` — §6.5 / Fig. 22: the interconnect drops to a
  fraction of its bandwidth during a window (congestion).
* :class:`BadNode` — a uniformly slow node (CPU and memory).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Fault:
    """Base class (marker) for injected faults."""


@dataclass(frozen=True, slots=True)
class BadNode(Fault):
    node_id: int
    cpu_factor: float = 0.6
    mem_factor: float = 0.6
    t0: float = 0.0
    t1: float = float("inf")


@dataclass(frozen=True, slots=True)
class SlowMemoryNode(Fault):
    node_id: int
    mem_factor: float = 0.55
    t0: float = 0.0
    t1: float = float("inf")


@dataclass(frozen=True, slots=True)
class CpuContention(Fault):
    """An injected noiser competing for CPU (and some memory bandwidth)."""

    node_ids: tuple[int, ...]
    t0: float
    t1: float
    cpu_factor: float = 0.5
    mem_factor: float = 0.8


@dataclass(frozen=True, slots=True)
class NetworkDegradation(Fault):
    t0: float
    t1: float
    #: multiplier on effective network speed (0.3 = 3.3x slower transfers)
    factor: float = 0.3


@dataclass(frozen=True, slots=True)
class IoDegradation(Fault):
    """The shared filesystem slows down (e.g. a concurrent checkpoint storm).

    ``node_ids`` of None hits every node (a parallel-FS-wide problem);
    otherwise only the listed nodes' IO stretches.
    """

    t0: float
    t1: float
    factor: float = 0.3
    node_ids: tuple[int, ...] | None = None


def cpu_factor_at(faults: tuple[Fault, ...], node_id: int, t: float) -> float:
    """Combined CPU speed multiplier for ``node_id`` at time ``t``."""
    f = 1.0
    for fault in faults:
        if isinstance(fault, BadNode) and fault.node_id == node_id and fault.t0 <= t < fault.t1:
            f *= fault.cpu_factor
        elif isinstance(fault, CpuContention) and node_id in fault.node_ids and fault.t0 <= t < fault.t1:
            f *= fault.cpu_factor
    return f


def mem_factor_at(faults: tuple[Fault, ...], node_id: int, t: float) -> float:
    """Combined memory performance multiplier for ``node_id`` at ``t``."""
    f = 1.0
    for fault in faults:
        if isinstance(fault, (BadNode, SlowMemoryNode)) and getattr(fault, "node_id", -1) == node_id:
            if fault.t0 <= t < fault.t1:
                f *= fault.mem_factor
        elif isinstance(fault, CpuContention) and node_id in fault.node_ids and fault.t0 <= t < fault.t1:
            f *= fault.mem_factor
    return f


def net_factor_at(faults: tuple[Fault, ...], t: float) -> float:
    """Network performance multiplier at ``t``."""
    f = 1.0
    for fault in faults:
        if isinstance(fault, NetworkDegradation) and fault.t0 <= t < fault.t1:
            f *= fault.factor
    return f


def io_factor_at(faults: tuple[Fault, ...], node_id: int, t: float) -> float:
    """IO performance multiplier for ``node_id`` at ``t``."""
    f = 1.0
    for fault in faults:
        if isinstance(fault, IoDegradation) and fault.t0 <= t < fault.t1:
            if fault.node_ids is None or node_id in fault.node_ids:
                f *= fault.factor
    return f


def fault_boundaries(faults: tuple[Fault, ...]) -> list[float]:
    """All fault window edges (used to segment time integration)."""
    edges: set[float] = set()
    for fault in faults:
        t0 = getattr(fault, "t0", None)
        t1 = getattr(fault, "t1", None)
        if t0 is not None and t0 > 0:
            edges.add(float(t0))
        if t1 is not None and t1 != float("inf"):
            edges.add(float(t1))
    return sorted(edges)
