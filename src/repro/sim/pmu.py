"""Simulated performance-monitoring unit (PMU).

Used to validate identified v-sensors (Table 1's *workload max error*
column): the interpreter counts the work units actually executed inside
each sensor; the PMU read adds a small deterministic measurement error
modelling real counters' non-determinism and overcount [Weaver et al.].

The PMU also synthesizes a cache-miss rate per read — the canonical dynamic
rule input (§3.1, §5.3, Fig. 13): the rate depends on the node's memory
pressure at the time of the reading.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.faults import Fault, mem_factor_at


@dataclass(slots=True)
class PmuSample:
    """One Tick..Tock reading."""

    instructions: float
    cache_miss_rate: float


class Pmu:
    def __init__(self, seed: int, rank: int, faults: tuple[Fault, ...], node_id: int,
                 relative_error: float = 0.01, base_miss_rate: float = 0.05) -> None:
        self._rng = np.random.default_rng(np.random.SeedSequence([seed & 0x7FFFFFFF, 77_000 + rank]))
        self._faults = faults
        self._node_id = node_id
        self._relative_error = relative_error
        self._base_miss_rate = base_miss_rate

    def read(self, true_work: float, t: float) -> PmuSample:
        err = 1.0 + abs(float(self._rng.normal(0.0, self._relative_error)))
        # Counters overcount, never undercount (matches measured behaviour).
        instructions = true_work * err
        mem = mem_factor_at(self._faults, self._node_id, t)
        # Degraded memory shows up as elevated miss rates.
        miss = min(0.95, self._base_miss_rate * (1.0 / max(mem, 0.05)) ** 1.5)
        miss *= 1.0 + 0.1 * float(self._rng.random())
        return PmuSample(instructions=instructions, cache_miss_rate=miss)
