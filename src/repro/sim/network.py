"""Network cost model for MPI operations.

Point-to-point transfers follow the Hockney model (alpha + beta * size);
collectives use standard log-P / linear-P expressions.  The whole fabric is
subject to a time-varying performance factor from injected
:class:`~repro.sim.faults.NetworkDegradation` episodes — during a
degradation window every transfer stretches by ``1/factor``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.faults import Fault, net_factor_at
from repro.sim.machine import MachineConfig


@dataclass(slots=True)
class NetworkModel:
    machine: MachineConfig
    faults: tuple[Fault, ...]

    def _stretch(self, t: float) -> float:
        return 1.0 / max(net_factor_at(self.faults, t), 1e-6)

    def stretch_at(self, t: float) -> float:
        """Transfer-time multiplier at ``t`` (1.0 on a healthy fabric)."""
        return self._stretch(t)

    def _p2p_base(self, size: float) -> float:
        return self.machine.net_alpha + self.machine.net_beta * max(0.0, size)

    def p2p(self, t: float, size: float) -> float:
        """Cost (µs) of one point-to-point transfer starting at ``t``."""
        return self._p2p_base(size) * self._stretch(t)

    def collective(self, op: str, t: float, size: float, n_ranks: int) -> float:
        """Cost (µs) of one collective starting at ``t`` for ``n_ranks``."""
        base = self._p2p_base(size)
        logp = max(1.0, math.log2(max(2, n_ranks)))
        if op == "barrier":
            cost = self.machine.net_alpha * logp
        elif op in ("bcast", "reduce"):
            cost = base * logp
        elif op in ("allreduce", "allgather"):
            cost = base * logp * 1.5
        elif op == "alltoall":
            # The most network-hungry collective: linear in P, which is why
            # FT is the paper's showcase for congestion sensitivity (§6.5).
            cost = self.machine.net_alpha * logp + self.machine.net_beta * size * max(1, n_ranks)
        else:
            cost = base
        return cost * self._stretch(t)
