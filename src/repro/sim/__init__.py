"""Deterministic discrete-event cluster simulator — the Tianhe-2 stand-in.

The paper evaluates on real hardware; this package provides the synthetic
equivalent the detection algorithms need: a cluster of nodes with
configurable CPU/memory performance, OS background noise, a shared network
with congestion episodes, fault injection (bad node, slow memory, CPU
contention, network degradation), MPI rendezvous semantics, and an AST
interpreter that executes each simulated rank against a virtual clock with
a simulated PMU.

Entry point: :class:`~repro.sim.engine.Simulator` —
``Simulator(program, machine).run(hooks)``.
"""

from repro.sim.engine import (
    AUTO_LOCKSTEP_MIN_RANKS,
    RankResult,
    SimResult,
    Simulator,
    resolve_engine,
)
from repro.sim.faults import (
    BadNode,
    CpuContention,
    Fault,
    IoDegradation,
    NetworkDegradation,
    SlowMemoryNode,
)
from repro.sim.hooks import NullHooks, RuntimeHooks
from repro.sim.machine import MachineConfig, NodeConfig
from repro.sim.noise import NoiseConfig

__all__ = [
    "BadNode",
    "CpuContention",
    "Fault",
    "IoDegradation",
    "MachineConfig",
    "NetworkDegradation",
    "NodeConfig",
    "NoiseConfig",
    "NullHooks",
    "AUTO_LOCKSTEP_MIN_RANKS",
    "RankResult",
    "RuntimeHooks",
    "SimResult",
    "Simulator",
    "SlowMemoryNode",
    "resolve_engine",
]
