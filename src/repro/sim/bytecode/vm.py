"""Register VM executing :mod:`repro.sim.bytecode.compiler` output.

One :class:`BytecodeInterp` per rank, all sharing one read-only
:class:`~repro.sim.bytecode.compiler.ProgramCode`.  The VM subclasses
:class:`~repro.sim.interp.RankInterp` so the clock, PMU, RNG, probe and IO
machinery — everything observable — is literally the same object code as
the AST tier; only statement/expression execution is replaced by the
dispatch core generated from :data:`repro.sim.bytecode.dispatch.OP_TABLE`.

The core keeps the hot half-unit work counters (``pend_h`` / ``tot_h``) in
Python locals and mirrors them into the inherited ``_pending_half`` /
``_total_half`` attributes around every call that might read or reset them
(flushes, probes, IO).  Residual (non-half-unit) charges go straight to
the ``_pending_frac`` / ``_total_frac`` attributes — they are rare and
must be applied in program order.

The generator protocol is the AST tier's: MPI rendezvous yields an
:class:`~repro.sim.interp.MpiRequest` and receives the completion time.
Because the core runs off an explicit :class:`ScalarState`, execution can
also *start mid-program*: the lockstep tier drains diverged lanes by
handing a materialized state to :meth:`BytecodeInterp.resume`.
"""

from __future__ import annotations

from repro.errors import InterpError
from repro.sim.bytecode.dispatch import DISPATCH_CORE, UNDEF, ScalarState, _Undef
from repro.sim.interp import RankInterp

__all__ = ["BytecodeInterp", "ScalarState", "UNDEF", "_Undef"]


class BytecodeInterp(RankInterp):
    """Bytecode-executing drop-in for :class:`RankInterp`."""

    def __init__(self, program, module, rank, n_ranks, machine, faults, hooks,
                 sensors=None, entry="main", externs=None, probe_control=None):
        super().__init__(
            module=module,
            rank=rank,
            n_ranks=n_ranks,
            machine=machine,
            faults=faults,
            hooks=hooks,
            sensors=sensors,
            entry=entry,
            externs=externs,
            probe_control=probe_control,
        )
        self.program = program

    def _init_globals_list(self) -> list:
        glist = []
        for gv in self.program.global_decls:
            if gv.array_size is not None:
                glist.append([0.0 if gv.var_type == "float" else 0] * gv.array_size)
            elif gv.init is not None:
                glist.append(self._eval_fast(gv.init))
            else:
                glist.append(0.0 if gv.var_type == "float" else 0)
        return glist

    #: generated dispatch loop — ``def _dispatch_core(self, state)`` generator
    _dispatch_core = DISPATCH_CORE

    def run(self):
        """Generator: yields MpiRequest; receives completion times."""
        program = self.program
        entry_idx = program.func_index.get(self.entry)
        if entry_idx is None:
            raise InterpError(f"no entry function {self.entry!r}")
        fc = program.funcs[entry_idx]
        state = ScalarState(
            glist=self._init_globals_list(),
            fc=fc,
            code=fc.code,
            regs=list(fc.proto),
            pc=0,
            stack=[],
            trace=self.hooks.wants_function_events,
        )
        if state.trace:
            self.hooks.on_func_enter(self.rank, fc.name, self.clock.now)
        yield from self._dispatch_core(state)

    def resume(self, state: ScalarState):
        """Run the dispatch core from an arbitrary materialized ``state``.

        Used by the lockstep tier to drain a diverged lane: the fused VM
        extracts the lane's registers/stack/pc into a :class:`ScalarState`
        and this rank's clock/PMU/RNG (shared with the fused batch the
        whole time) carry on exactly where the vectors left off.
        """
        return self._dispatch_core(state)

    # -- cold paths ---------------------------------------------------------

    def _extern(self, meta, args, pend_h, tot_h):
        """Run an extern-model call; returns the updated half counters.

        Mirrors the extern branch of :meth:`RankInterp._intrinsic` exactly.
        """
        name, model = meta
        if model is None:
            raise InterpError(f"rank {self.rank}: call to unknown function {name!r}")
        units = 1.0
        for idx in model.workload_args:
            if idx < len(args):
                units *= max(0.0, float(args[idx]))
        cost = model.base_cost + model.unit_cost * (units if model.workload_args else 0.0)
        if model.category == "net":
            self._pending_half = pend_h
            self._total_half = tot_h
            self._flush()
            pend_h = 0
            t0 = self.clock.now
            self.clock.advance_wall(cost * self.network.stretch_at(t0))
            self.hooks.on_mpi_end(self.rank, name, t0, self.clock.now, units)
        elif model.category == "io":
            self._pending_half = pend_h
            self._total_half = tot_h
            self._io_op(name, units)
            pend_h = 0
        else:
            doubled = cost + cost
            if doubled < 1e15 and doubled == int(doubled):
                n = int(doubled)
                pend_h += n
                tot_h += n
            else:
                self._pending_frac += cost
                self._total_frac += cost
        return pend_h, tot_h

    def _bad_array(self, fc, pc):
        raise InterpError(f"{fc.names.get(pc, '?')!r} is not an array")
