"""Register VM executing :mod:`repro.sim.bytecode.compiler` output.

One :class:`BytecodeInterp` per rank, all sharing one read-only
:class:`~repro.sim.bytecode.compiler.ProgramCode`.  The VM subclasses
:class:`~repro.sim.interp.RankInterp` so the clock, PMU, RNG, probe and IO
machinery — everything observable — is literally the same object code as
the AST tier; only statement/expression execution is replaced by the
dispatch loop below.

The loop keeps the hot half-unit work counters (``pend_h`` / ``tot_h``) in
Python locals and mirrors them into the inherited ``_pending_half`` /
``_total_half`` attributes around every call that might read or reset them
(flushes, probes, IO).  Residual (non-half-unit) charges go straight to
the ``_pending_frac`` / ``_total_frac`` attributes — they are rare and
must be applied in program order.

The generator protocol is the AST tier's: MPI rendezvous yields an
:class:`~repro.sim.interp.MpiRequest` and receives the completion time.
"""

from __future__ import annotations

from repro.errors import InterpError
from repro.sim.bytecode import ops
from repro.sim.interp import MpiRequest, RankInterp


class _Undef:
    """Sentinel for a local slot that has not been written yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNDEF"


UNDEF = _Undef()


class BytecodeInterp(RankInterp):
    """Bytecode-executing drop-in for :class:`RankInterp`."""

    def __init__(self, program, module, rank, n_ranks, machine, faults, hooks,
                 sensors=None, entry="main", externs=None):
        super().__init__(
            module=module,
            rank=rank,
            n_ranks=n_ranks,
            machine=machine,
            faults=faults,
            hooks=hooks,
            sensors=sensors,
            entry=entry,
            externs=externs,
        )
        self.program = program

    def _init_globals_list(self) -> list:
        glist = []
        for gv in self.program.global_decls:
            if gv.array_size is not None:
                glist.append([0.0 if gv.var_type == "float" else 0] * gv.array_size)
            elif gv.init is not None:
                glist.append(self._eval_fast(gv.init))
            else:
                glist.append(0.0 if gv.var_type == "float" else 0)
        return glist

    def run(self):  # noqa: C901 - the dispatch ladder is one deliberate unit
        """Generator: yields MpiRequest; receives completion times."""
        program = self.program
        entry_idx = program.func_index.get(self.entry)
        if entry_idx is None:
            raise InterpError(f"no entry function {self.entry!r}")
        glist = self._init_globals_list()

        # Local aliases for the dispatch loop.
        funcs = program.funcs
        func_index = program.func_index
        rank = self.rank
        clock = self.clock
        hooks = self.hooks
        rng = self._rng
        undef = UNDEF
        nmod = max(1, self.n_ranks)
        pend_h = self._pending_half
        tot_h = self._total_half

        fc = funcs[entry_idx]
        code = fc.code
        regs = list(fc.proto)
        pc = 0
        trace = hooks.wants_function_events
        if trace:
            hooks.on_func_enter(rank, fc.name, clock.now)
        stack = []  # saved caller frames: (code, regs, pc, dst, fc, trace)

        while True:
            op, a, b, c = code[pc]
            pc += 1
            if op == ops.CHARGE:
                pend_h += a
                tot_h += a
            elif op == ops.MOVE:
                regs[a] = regs[b]
            elif op == ops.ADD:
                regs[a] = regs[b] + regs[c]
            elif op == ops.SUB:
                regs[a] = regs[b] - regs[c]
            elif op == ops.MUL:
                regs[a] = regs[b] * regs[c]
            elif op == ops.INDEX:
                arr = regs[b]
                if type(arr) is not list:
                    self._bad_array(fc, pc - 1)
                regs[a] = arr[int(regs[c]) % len(arr)]
            elif op == ops.INDEXG:
                arr = glist[b]
                if type(arr) is not list:
                    self._bad_array(fc, pc - 1)
                regs[a] = arr[int(regs[c]) % len(arr)]
            elif op == ops.STIDX:
                arr = regs[a]
                if type(arr) is not list:
                    self._bad_array(fc, pc - 1)
                arr[int(regs[b]) % len(arr)] = regs[c]
            elif op == ops.STIDXG:
                arr = glist[a]
                if type(arr) is not list:
                    self._bad_array(fc, pc - 1)
                arr[int(regs[b]) % len(arr)] = regs[c]
            elif op == ops.JLT_F:
                if not (regs[a] < regs[b]):
                    pc = c
            elif op == ops.JLE_F:
                if not (regs[a] <= regs[b]):
                    pc = c
            elif op == ops.JGT_F:
                if not (regs[a] > regs[b]):
                    pc = c
            elif op == ops.JGE_F:
                if not (regs[a] >= regs[b]):
                    pc = c
            elif op == ops.JEQ_F:
                if not (regs[a] == regs[b]):
                    pc = c
            elif op == ops.JNE_F:
                if not (regs[a] != regs[b]):
                    pc = c
            elif op == ops.JUMP:
                pc = a
            elif op == ops.JF:
                if not regs[a]:
                    pc = b
            elif op == ops.JT:
                if regs[a]:
                    pc = b
            elif op == ops.CU:
                units = max(0.0, float(regs[a])) if a >= 0 else 0.0
                doubled = units + units
                if doubled < 1e15 and doubled == int(doubled):
                    n = int(doubled)
                    pend_h += n
                    tot_h += n
                else:
                    self._pending_frac += units
                    self._total_frac += units
            elif op == ops.DIV:
                left = regs[b]
                right = regs[c]
                if right == 0:
                    regs[a] = 0
                elif type(left) is int and type(right) is int:
                    regs[a] = (
                        left // right
                        if (left >= 0) == (right >= 0)
                        else -((-left) // right)
                    )
                else:
                    regs[a] = left / right
            elif op == ops.MOD:
                right = regs[c]
                regs[a] = regs[b] % right if right != 0 else 0
            elif op == ops.LT:
                regs[a] = 1 if regs[b] < regs[c] else 0
            elif op == ops.LE:
                regs[a] = 1 if regs[b] <= regs[c] else 0
            elif op == ops.GT:
                regs[a] = 1 if regs[b] > regs[c] else 0
            elif op == ops.GE:
                regs[a] = 1 if regs[b] >= regs[c] else 0
            elif op == ops.EQ:
                regs[a] = 1 if regs[b] == regs[c] else 0
            elif op == ops.NE:
                regs[a] = 1 if regs[b] != regs[c] else 0
            elif op == ops.ANDL:
                regs[a] = 1 if (regs[b] and regs[c]) else 0
            elif op == ops.ORL:
                regs[a] = 1 if (regs[b] or regs[c]) else 0
            elif op == ops.NEG:
                regs[a] = -regs[b]
            elif op == ops.NOTL:
                regs[a] = 0 if regs[b] else 1
            elif op == ops.LOADG:
                regs[a] = glist[b]
            elif op == ops.STOREG:
                glist[a] = regs[b]
            elif op == ops.CHKDEF:
                if regs[a] is undef:
                    raise InterpError(
                        f"rank {rank}: read of undefined variable "
                        f"{fc.names.get(pc - 1, '?')!r}"
                    )
            elif op == ops.LOADX:
                value = regs[b]
                regs[a] = glist[c] if value is undef else value
            elif op == ops.STOREX:
                if regs[a] is undef:
                    glist[b] = regs[c]
                else:
                    regs[a] = regs[c]
            elif op == ops.NEWARR:
                regs[a] = [c] * b
            elif op == ops.MATHOP:
                pend_h += 4
                tot_h += 4
                try:
                    regs[a] = b(*[regs[i] for i in c])
                except (ValueError, OverflowError):
                    regs[a] = 0.0
            elif op == ops.CALL:
                callee = funcs[b]
                nregs = list(callee.proto)
                n_args = len(c)
                for i, slot in enumerate(callee.param_slots):
                    nregs[slot] = regs[c[i]] if i < n_args else 0
                stack.append((code, regs, pc, a, fc, trace))
                fc = callee
                code = callee.code
                regs = nregs
                pc = 0
                trace = hooks.wants_function_events
                if trace:
                    hooks.on_func_enter(rank, fc.name, clock.now)
            elif op == ops.RET or op == ops.RETK:
                value = regs[a] if op == ops.RET else a
                if trace:
                    hooks.on_func_exit(rank, fc.name, clock.now)
                if not stack:
                    break
                code, regs, pc, dst, fc, trace = stack.pop()
                regs[dst] = value
            elif op == ops.RANKOP:
                self._pending_frac += 0.1
                self._total_frac += 0.1
                regs[a] = rank
            elif op == ops.SIZEOP:
                self._pending_frac += 0.1
                self._total_frac += 0.1
                regs[a] = self.n_ranks
            elif op == ops.WTIME:
                self._pending_half = pend_h
                self._total_half = tot_h
                self._flush()
                pend_h = 0
                regs[a] = clock.now
            elif op == ops.COLL:
                self._pending_half = pend_h
                self._total_half = tot_h
                self._flush()
                pend_h = 0
                engine_op, spelled = b
                size = float(regs[c]) if c >= 0 else 0.0
                t0 = clock.now
                hooks.on_mpi_begin(rank, spelled, t0)
                completion = yield MpiRequest(
                    rank=rank, op=engine_op, size=size, peer=-1, arrive=t0
                )
                clock.wait_until(completion)
                hooks.on_mpi_end(rank, spelled, t0, clock.now, size)
                regs[a] = 0
            elif op == ops.P2P:
                self._pending_half = pend_h
                self._total_half = tot_h
                self._flush()
                pend_h = 0
                engine_op, spelled = b
                peer_reg, size_reg = c
                peer = (int(regs[peer_reg]) if peer_reg >= 0 else 0) % nmod
                size = float(regs[size_reg]) if size_reg >= 0 else 0.0
                t0 = clock.now
                hooks.on_mpi_begin(rank, spelled, t0)
                completion = yield MpiRequest(
                    rank=rank, op=engine_op, size=size, peer=peer, arrive=t0
                )
                clock.wait_until(completion)
                hooks.on_mpi_end(rank, spelled, t0, clock.now, size)
                regs[a] = 0
            elif op == ops.TICKOP:
                self._pending_half = pend_h
                self._total_half = tot_h
                self._probe_tick(int(regs[a]))
                pend_h = self._pending_half
                tot_h = self._total_half
            elif op == ops.TOCKOP:
                self._pending_half = pend_h
                self._total_half = tot_h
                self._probe_tock(int(regs[a]))
                pend_h = self._pending_half
                tot_h = self._total_half
            elif op == ops.IOOP:
                self._pending_half = pend_h
                self._total_half = tot_h
                size = float(regs[c]) if c >= 0 else 1.0
                self._io_op(b, size)
                pend_h = 0
                regs[a] = 0
            elif op == ops.RANDOP:
                pend_h += 1
                tot_h += 1
                regs[a] = int(rng.integers(0, 2**31 - 1))
            elif op == ops.CLOCKOP:
                self._pending_half = pend_h
                self._total_half = tot_h
                self._flush()
                pend_h = 0
                regs[a] = int(clock.now)
            elif op == ops.HOSTOP:
                pend_h += 1
                tot_h += 1
                regs[a] = clock.node.node_id
            elif op == ops.RESFP:
                slot, gidx = b
                value = None
                if slot >= 0:
                    value = regs[slot]
                    if value is undef:
                        value = glist[gidx] if gidx >= 0 else None
                elif gidx >= 0:
                    value = glist[gidx]
                regs[a] = (
                    func_index.get(value, -1) if type(value) is str else -1
                )
            elif op == ops.CALLIND:
                target = regs[b]
                meta, arg_regs = c
                if target >= 0:
                    callee = funcs[target]
                    nregs = list(callee.proto)
                    n_args = len(arg_regs)
                    for i, slot in enumerate(callee.param_slots):
                        nregs[slot] = regs[arg_regs[i]] if i < n_args else 0
                    stack.append((code, regs, pc, a, fc, trace))
                    fc = callee
                    code = callee.code
                    regs = nregs
                    pc = 0
                    trace = hooks.wants_function_events
                    if trace:
                        hooks.on_func_enter(rank, fc.name, clock.now)
                else:
                    pend_h, tot_h = self._extern(
                        meta, [regs[i] for i in arg_regs], pend_h, tot_h
                    )
                    regs[a] = 0
            elif op == ops.EXTCALL:
                pend_h, tot_h = self._extern(
                    b, [regs[i] for i in c], pend_h, tot_h
                )
                regs[a] = 0
            else:  # pragma: no cover - compiler never emits unknown ops
                raise InterpError(f"bad opcode {op}")

        self._pending_half = pend_h
        self._total_half = tot_h
        self._flush()
        hooks.on_program_end(rank, clock.now)

    # -- cold paths ---------------------------------------------------------

    def _extern(self, meta, args, pend_h, tot_h):
        """Run an extern-model call; returns the updated half counters.

        Mirrors the extern branch of :meth:`RankInterp._intrinsic` exactly.
        """
        name, model = meta
        if model is None:
            raise InterpError(f"rank {self.rank}: call to unknown function {name!r}")
        units = 1.0
        for idx in model.workload_args:
            if idx < len(args):
                units *= max(0.0, float(args[idx]))
        cost = model.base_cost + model.unit_cost * (units if model.workload_args else 0.0)
        if model.category == "net":
            self._pending_half = pend_h
            self._total_half = tot_h
            self._flush()
            pend_h = 0
            t0 = self.clock.now
            self.clock.advance_wall(cost * self.network.stretch_at(t0))
            self.hooks.on_mpi_end(self.rank, name, t0, self.clock.now, units)
        elif model.category == "io":
            self._pending_half = pend_h
            self._total_half = tot_h
            self._io_op(name, units)
            pend_h = 0
        else:
            doubled = cost + cost
            if doubled < 1e15 and doubled == int(doubled):
                n = int(doubled)
                pend_h += n
                tot_h += n
            else:
                self._pending_frac += cost
                self._total_frac += cost
        return pend_h, tot_h

    def _bad_array(self, fc, pc):
        raise InterpError(f"{fc.names.get(pc, '?')!r} is not an array")
