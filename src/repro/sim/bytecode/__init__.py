"""Bytecode compilation tier for the mini language (the fast interpreter).

The AST interpreter (:mod:`repro.sim.interp`) walks the tree once per node
per execution; at 256+ simulated ranks that tree walk dominates every
benchmark.  This package lowers each function **once per program** into a
compact register-based instruction stream:

* locals and globals are resolved to integer slots at compile time;
* the work-unit costs of every straight-line span are constant-folded into
  a single ``CHARGE`` instruction per basic block (exact: the folded costs
  are integer counts of half work units, so grouping cannot change the
  float result — see the accounting note in :mod:`repro.sim.interp`);
* call sites are pre-classified (user function / intrinsic family /
  extern model / indirect funcptr) so the VM never string-matches a name
  in the hot loop.

The read-only :class:`ProgramCode` is shared by all N rank VMs; per-rank
setup is allocation-only.  The VM speaks the exact generator protocol of
the AST tier (yield :class:`~repro.sim.interp.MpiRequest`, receive the
completion time), so the rendezvous engine and every runtime hook are
unchanged, and the two tiers produce bit-identical results.
"""

from repro.sim.bytecode.compiler import FuncCode, ProgramCode, compile_module
from repro.sim.bytecode.disasm import (
    disassemble,
    disassemble_function,
    fusability_summary,
)
from repro.sim.bytecode.vm import UNDEF, BytecodeInterp

__all__ = [
    "BytecodeInterp",
    "FuncCode",
    "ProgramCode",
    "UNDEF",
    "compile_module",
    "disassemble",
    "disassemble_function",
    "fusability_summary",
]
