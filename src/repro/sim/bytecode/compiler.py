"""AST → register bytecode lowering.

One :func:`compile_module` call per program; the result is immutable and
shared by every rank VM.  The compiler mirrors the AST interpreter's
semantics *exactly* — including its quirks (dynamic local creation on
first write, globals shadowed only once the shadowing ``VarDecl`` has
executed, ``int`` default initializers even for ``float`` scalars) — so
that the two tiers stay bit-identical.

Lowering decisions:

* **Name resolution.**  Locals get frame slots; globals get indices into
  the per-rank globals list.  A name that is both a global and declared
  local somewhere in the function is *mixed*: its slot starts as the
  ``UNDEF`` sentinel and ``LOADX``/``STOREX`` fall back to the global
  while the slot is undefined — reproducing the AST tier's
  frame-then-globals lookup without a dict.
* **Definite assignment.**  A conservative forward walk decides which
  local reads can skip the ``CHKDEF`` undefined-variable check (params
  and anything assigned on every path so far; branch results intersect,
  loop bodies don't leak, ``continue`` edges join into the for-step).
* **Charge folding.**  Work-unit costs (all integer multiples of 0.5)
  accumulate in an integer half-unit counter and are emitted as one
  ``CHARGE`` per straight-line span; the span breaks at labels, jumps,
  returns, calls and any instruction that can flush the clock.  Exact
  integer accumulation makes the grouping invisible in the float result
  (see the accounting note in :mod:`repro.sim.interp`).
* **Peepholes.**  compare(+CHARGE)+branch fuses into the ``J??_F`` family.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InterpError
from repro.frontend import ast_nodes as A
from repro.instrument.rewrite import TICK, TOCK
from repro.sim.bytecode import ops
from repro.sim.interp import (
    COST_BINOP,
    COST_BRANCH,
    COST_CALL,
    COST_INDEX,
    COST_LOAD,
    COST_STORE,
    COST_UNARY,
    _INTRINSIC_NAMES,
    _MATH_FUNCS,
    _MPI_COLLECTIVES,
    _binop,
)


@dataclass(frozen=True, slots=True)
class FuncCode:
    """Read-only compiled form of one function."""

    name: str
    code: tuple
    #: register prototype, copied per call: [UNDEF]*n_locals + [0]*n_temps + consts
    proto: tuple
    param_slots: tuple
    n_locals: int
    local_names: tuple
    #: pc -> source name, consulted only on error paths and by the disassembler
    names: dict
    #: pc of a structured conditional jump -> ("if" | "loop", merge_pc, head_pc)
    #: — the reconvergence metadata the lockstep tier's mask frames run on.
    #: ``head_pc`` is -1 for ifs; for loops it is the loop-header pc.
    cf: dict


@dataclass(frozen=True, slots=True)
class ProgramCode:
    """A compiled module: shared, read-only, one per program."""

    funcs: tuple
    func_index: dict
    global_names: tuple
    global_index: dict
    #: the module's globals in declaration order (AST nodes, for per-rank init)
    global_decls: tuple


_MATH_TWO_ARG = frozenset(("pow", "fmod", "min", "max"))

_P2P_OPS = {"MPI_Send": "send", "MPI_Recv": "recv", "MPI_Sendrecv": "sendrecv"}

_CMP_TO_FUSED = {
    ops.LT: ops.JLT_F,
    ops.LE: ops.JLE_F,
    ops.GT: ops.JGT_F,
    ops.GE: ops.JGE_F,
    ops.EQ: ops.JEQ_F,
    ops.NE: ops.JNE_F,
}

_BINOP_OPS = {
    "+": ops.ADD,
    "-": ops.SUB,
    "*": ops.MUL,
    "/": ops.DIV,
    "%": ops.MOD,
    "<": ops.LT,
    "<=": ops.LE,
    ">": ops.GT,
    ">=": ops.GE,
    "==": ops.EQ,
    "!=": ops.NE,
    "&&": ops.ANDL,
    "||": ops.ORL,
}


def compile_module(module: A.Module, externs) -> ProgramCode:
    """Lower every function of ``module``; ``externs`` is an ExternRegistry."""
    global_index = {gv.name: i for i, gv in enumerate(module.globals)}
    func_names = {fn.name for fn in module.functions}
    func_order = {fn.name: i for i, fn in enumerate(module.functions)}
    funcs = tuple(
        _FuncCompiler(fn, global_index, func_names, func_order, externs).compile()
        for fn in module.functions
    )
    return ProgramCode(
        funcs=funcs,
        func_index=dict(func_order),
        global_names=tuple(global_index),
        global_index=global_index,
        global_decls=tuple(module.globals),
    )


class _Label:
    __slots__ = ("pc",)

    def __init__(self) -> None:
        self.pc = -1


class _FuncCompiler:
    def __init__(self, fn, global_index, func_names, func_order, externs) -> None:
        self.fn = fn
        self.global_index = global_index
        self.func_names = func_names
        self.func_order = func_order
        self.externs = externs

        params = [p.name for p in fn.params]
        declared: set[str] = set()
        referenced: set[str] = set()
        if fn.body is not None:
            for stmt in A.walk_stmts(fn.body):
                if isinstance(stmt, A.VarDecl):
                    declared.add(stmt.name)
                for expr in A.walk_exprs(stmt):
                    if isinstance(expr, (A.VarRef, A.ArrayRef)):
                        referenced.add(expr.name)
        # Mixed = shadows a global, but only once its VarDecl has executed.
        # Params always shadow (their slot is filled at call time).
        self.mixed = (declared - set(params)) & set(global_index)
        local_names = list(params)
        for name in sorted(declared | referenced):
            if name in local_names:
                continue
            if name in global_index and name not in self.mixed:
                continue
            local_names.append(name)
        self.local_names = local_names
        self.slot = {name: i for i, name in enumerate(local_names)}
        self.param_slots = tuple(self.slot[p] for p in params)

        self.out: list = []          # emitted items: lists [op,a,b,c] or _Label
        self.out_names: list = []    # parallel source names (None when n/a)
        self.out_cf: list = []       # parallel cf tags: (kind, merge, head) or None
        self.consts: dict = {}       # (typename, value) -> const idx
        self.const_values: list = []
        self.n_temps = 0
        self._tmp = 0
        self._acc = 0                # folded pending charge, half work units
        self.defined: set[str] = set(params)
        self.loops: list = []        # [continue_label, break_label, cont_defined]

    # -- emission helpers ---------------------------------------------------

    def emit(self, op, a=None, b=None, c=None, name=None) -> None:
        self.out.append([op, a, b, c])
        self.out_names.append(name)
        self.out_cf.append(None)

    def bind(self, label: _Label) -> None:
        self.flush_charges()
        self.out.append(label)
        self.out_names.append(None)
        self.out_cf.append(None)

    def add_cost(self, units: float) -> None:
        doubled = units * 2.0
        half = int(doubled)
        if half != doubled:  # pragma: no cover - every COST_* is a half-unit
            raise InterpError(f"non-foldable static cost {units}")
        self._acc += half

    def flush_charges(self) -> None:
        if self._acc:
            self.emit(ops.CHARGE, self._acc)
            self._acc = 0

    def tmp(self):
        reg = ("t", self._tmp)
        self._tmp += 1
        if self._tmp > self.n_temps:
            self.n_temps = self._tmp
        return reg

    def const(self, value):
        key = (type(value).__name__, value)
        idx = self.consts.get(key)
        if idx is None:
            idx = len(self.const_values)
            self.consts[key] = idx
            self.const_values.append(value)
        return ("k", idx)

    # -- expression compilation --------------------------------------------

    def compile_expr(self, expr, dst=None):
        """Compile ``expr``; return the register holding its value.

        With ``dst`` set, the value lands in that register (used to write
        assignment results straight into the target slot; every expression
        form writes ``dst`` exactly once, as its final instruction, so the
        old value stays readable throughout evaluation).
        """
        if isinstance(expr, (A.IntLit, A.FloatLit, A.StringLit)):
            reg = self.const(expr.value)
            if dst is not None:
                self.emit(ops.MOVE, dst, reg)
                return dst
            return reg
        if isinstance(expr, A.AddrOf):
            reg = self.const(expr.func_name)
            if dst is not None:
                self.emit(ops.MOVE, dst, reg)
                return dst
            return reg
        if isinstance(expr, A.VarRef):
            self.add_cost(COST_LOAD)
            return self._read_name(expr.name, dst)
        if isinstance(expr, A.ArrayRef):
            idx = self.compile_expr(expr.index)
            self.add_cost(COST_LOAD + COST_INDEX)
            out = dst if dst is not None else self.tmp()
            arr = self._array_reg(expr.name)
            if arr is None:  # plain global array: fused form
                self.emit(ops.INDEXG, out, self.global_index[expr.name], idx, name=expr.name)
            else:
                self.emit(ops.INDEX, out, arr, idx, name=expr.name)
            return out
        if isinstance(expr, A.BinOp):
            left = self.compile_expr(expr.left)
            right = self.compile_expr(expr.right)
            self.add_cost(COST_BINOP)
            # Constant-fold literal operands (the charge above still counts).
            if (
                isinstance(left, tuple)
                and isinstance(right, tuple)
                and left[0] == "k"
                and right[0] == "k"
            ):
                folded = _binop(expr.op, self.const_values[left[1]], self.const_values[right[1]])
                reg = self.const(folded)
                if dst is not None:
                    self.emit(ops.MOVE, dst, reg)
                    return dst
                return reg
            out = dst if dst is not None else self.tmp()
            self.emit(_BINOP_OPS[expr.op], out, left, right)
            return out
        if isinstance(expr, A.UnaryOp):
            value = self.compile_expr(expr.operand)
            self.add_cost(COST_UNARY)
            out = dst if dst is not None else self.tmp()
            self.emit(ops.NEG if expr.op == "-" else ops.NOTL, out, value)
            return out
        if isinstance(expr, A.CallExpr):
            return self.compile_call(expr, dst)
        raise InterpError(f"cannot compile {type(expr).__name__}")

    def _read_name(self, name, dst):
        """Value of a variable read (the COST_LOAD is already accounted)."""
        if name in self.mixed:
            out = dst if dst is not None else self.tmp()
            self.emit(ops.LOADX, out, self.slot[name], self.global_index[name], name=name)
            return out
        slot = self.slot.get(name)
        if slot is not None:
            if name not in self.defined:
                self.emit(ops.CHKDEF, slot, name=name)
            if dst is not None:
                self.emit(ops.MOVE, dst, slot)
                return dst
            return slot
        out = dst if dst is not None else self.tmp()
        self.emit(ops.LOADG, out, self.global_index[name], name=name)
        return out

    def _array_reg(self, name):
        """Register holding the array object, or None for a plain global."""
        if name in self.mixed:
            out = self.tmp()
            self.emit(ops.LOADX, out, self.slot[name], self.global_index[name], name=name)
            return out
        slot = self.slot.get(name)
        if slot is not None:
            if name not in self.defined:
                self.emit(ops.CHKDEF, slot, name=name)
            return slot
        return None

    # -- calls --------------------------------------------------------------

    def compile_call(self, expr: A.CallExpr, dst=None, discard=False):
        name = expr.callee
        if name in self.func_names:
            args = tuple(self.compile_expr(a) for a in expr.args)
            self.add_cost(COST_CALL)
            out = dst if dst is not None else self.tmp()
            self.flush_charges()
            self.emit(ops.CALL, out, self.func_order[name], args, name=name)
            return out
        if name not in _INTRINSIC_NAMES:
            slot = self.slot.get(name, -1)
            gidx = self.global_index.get(name, -1)
            model = self.externs.lookup(name) if self.externs is not None else None
            if slot < 0 and gidx < 0:
                # Never a funcptr variable here: direct extern (or unknown).
                args = tuple(self.compile_expr(a) for a in expr.args)
                self.add_cost(COST_CALL)
                out = dst if dst is not None else self.tmp()
                if model is None or model.category in ("net", "io"):
                    self.flush_charges()
                self.emit(ops.EXTCALL, out, (name, model), args, name=name)
                return out
            # The AST tier resolves the funcptr before evaluating arguments.
            fp = self.tmp()
            self.emit(ops.RESFP, fp, (slot, gidx), name=name)
            args = tuple(self.compile_expr(a) for a in expr.args)
            self.add_cost(COST_CALL)
            out = dst if dst is not None else self.tmp()
            self.flush_charges()
            self.emit(ops.CALLIND, out, fp, ((name, model), args), name=name)
            return out
        args = tuple(self.compile_expr(a) for a in expr.args)
        self.add_cost(COST_CALL)
        return self._compile_intrinsic(name, args, dst, discard)

    def _const_zero(self, dst, discard):
        """Result register for intrinsics that always return 0."""
        if discard:
            return None
        reg = self.const(0)
        if dst is not None:
            self.emit(ops.MOVE, dst, reg)
            return dst
        return reg

    def _compile_intrinsic(self, name, args, dst, discard):
        def out():
            return dst if dst is not None else self.tmp()

        if name == "compute_units":
            self.emit(ops.CU, args[0] if args else -1, name=name)
            return self._const_zero(dst, discard)
        if name == TICK or name == TOCK:
            self.flush_charges()
            self.emit(
                ops.TICKOP if name == TICK else ops.TOCKOP,
                args[0] if args else -1,
                name=name,
            )
            return self._const_zero(dst, discard)
        if name == "MPI_Comm_rank":
            reg = out()
            self.emit(ops.RANKOP, reg, name=name)
            return reg
        if name == "MPI_Comm_size":
            reg = out()
            self.emit(ops.SIZEOP, reg, name=name)
            return reg
        if name == "MPI_Wtime":
            self.flush_charges()
            reg = out()
            self.emit(ops.WTIME, reg, name=name)
            return reg
        if name in _MPI_COLLECTIVES:
            op = _MPI_COLLECTIVES[name]
            if op == "barrier":
                size = -1
            elif op in ("bcast", "reduce"):
                size = args[1] if len(args) > 1 else -1
            else:
                size = args[0] if args else -1
            self.flush_charges()
            reg = out()
            self.emit(ops.COLL, reg, (op, name), size, name=name)
            return reg
        if name in _P2P_OPS:
            peer = args[0] if args else -1
            size = args[1] if len(args) > 1 else -1
            self.flush_charges()
            reg = out()
            self.emit(ops.P2P, reg, (_P2P_OPS[name], name), (peer, size), name=name)
            return reg
        if name in _MATH_FUNCS:
            k = 2 if name in _MATH_TWO_ARG else 1
            reg = out()
            self.emit(ops.MATHOP, reg, _MATH_FUNCS[name], args[:k], name=name)
            return reg
        if name == "printf":
            self.flush_charges()
            reg = out()
            self.emit(ops.IOOP, reg, "printf", -1, name=name)
            return reg
        if name in ("fread", "fwrite"):
            self.flush_charges()
            reg = out()
            self.emit(ops.IOOP, reg, name, args[0] if args else -1, name=name)
            return reg
        if name in ("fopen", "fclose"):
            self.flush_charges()
            reg = out()
            self.emit(ops.IOOP, reg, name, -1, name=name)
            return reg
        if name == "rand":
            reg = out()
            self.emit(ops.RANDOP, reg, name=name)
            return reg
        if name == "srand":
            # No charge, no effect, returns 0 — lowers to nothing.
            return self._const_zero(dst, discard)
        if name == "clock":
            self.flush_charges()
            reg = out()
            self.emit(ops.CLOCKOP, reg, name=name)
            return reg
        if name == "gethostname":
            reg = out()
            self.emit(ops.HOSTOP, reg, name=name)
            return reg
        raise InterpError(f"unclassifiable intrinsic {name!r}")  # pragma: no cover

    # -- statements ---------------------------------------------------------

    def compile_stmt(self, stmt) -> None:
        self._tmp = 0
        if isinstance(stmt, A.Block):
            for child in stmt.stmts:
                self.compile_stmt(child)
            return
        if isinstance(stmt, A.VarDecl):
            slot = self.slot[stmt.name]
            if stmt.array_size is not None:
                fill = 0.0 if stmt.var_type == "float" else 0
                self.emit(ops.NEWARR, slot, stmt.array_size, fill, name=stmt.name)
            elif stmt.init is not None:
                self.compile_expr(stmt.init, dst=slot)
            else:
                # The AST tier defaults scalars to int 0 regardless of type.
                self.emit(ops.MOVE, slot, self.const(0), name=stmt.name)
            self.add_cost(COST_STORE)
            self.defined.add(stmt.name)
            return
        if isinstance(stmt, A.Assign):
            self._compile_assign(stmt)
            return
        if isinstance(stmt, A.IfStmt):
            self.add_cost(COST_BRANCH)
            cond = self.compile_expr(stmt.cond)
            else_label, end_label = _Label(), _Label()
            self.emit_jf(
                cond,
                else_label if stmt.else_body is not None else end_label,
                cf=("if", end_label, None),
            )
            before = set(self.defined)
            self.compile_stmt(stmt.then_body)
            after_then = self.defined
            if stmt.else_body is not None:
                self.flush_charges()
                self.emit(ops.JUMP, end_label)
                self.bind(else_label)
                self.defined = set(before)
                self.compile_stmt(stmt.else_body)
                self.defined = after_then & self.defined
            else:
                self.defined = before & after_then
            self.bind(end_label)
            return
        if isinstance(stmt, A.ForStmt):
            if stmt.init is not None:
                self.compile_stmt(stmt.init)
            head, step_label, end = _Label(), _Label(), _Label()
            entry_defined = set(self.defined)
            self.bind(head)
            self._tmp = 0
            self.add_cost(COST_BRANCH)
            if stmt.cond is not None:
                cond = self.compile_expr(stmt.cond)
                self.emit_jf(cond, end, cf=("loop", end, head))
            self.loops.append([step_label, end, []])
            if stmt.body is not None:
                self.compile_stmt(stmt.body)
            cont_sets = self.loops.pop()[2]
            self.bind(step_label)
            for s in cont_sets:
                self.defined &= s
            if stmt.step is not None:
                self.compile_stmt(stmt.step)
            self.flush_charges()
            self.emit(ops.JUMP, head)
            self.bind(end)
            self.defined = entry_defined
            return
        if isinstance(stmt, A.WhileStmt):
            head, end = _Label(), _Label()
            entry_defined = set(self.defined)
            self.bind(head)
            self._tmp = 0
            self.add_cost(COST_BRANCH)
            cond = self.compile_expr(stmt.cond)
            self.emit_jf(cond, end, cf=("loop", end, head))
            self.loops.append([head, end, []])
            if stmt.body is not None:
                self.compile_stmt(stmt.body)
            self.loops.pop()
            self.flush_charges()
            self.emit(ops.JUMP, head)
            self.bind(end)
            self.defined = entry_defined
            return
        if isinstance(stmt, A.ReturnStmt):
            if stmt.value is not None:
                reg = self.compile_expr(stmt.value)
                self.flush_charges()
                self.emit(ops.RET, reg)
            else:
                self.flush_charges()
                self.emit(ops.RETK, 0)
            return
        if isinstance(stmt, A.BreakStmt):
            if self.loops:
                self.flush_charges()
                self.emit(ops.JUMP, self.loops[-1][1])
            return
        if isinstance(stmt, A.ContinueStmt):
            if self.loops:
                self.loops[-1][2].append(set(self.defined))
                self.flush_charges()
                self.emit(ops.JUMP, self.loops[-1][0])
            return
        if isinstance(stmt, A.ExprStmt):
            if isinstance(stmt.expr, A.CallExpr):
                self.compile_call(stmt.expr, discard=True)
            else:
                self.compile_expr(stmt.expr)
            return
        raise InterpError(f"cannot compile {type(stmt).__name__}")

    def _compile_assign(self, stmt: A.Assign) -> None:
        target = stmt.target
        if isinstance(target, A.VarRef):
            name = target.name
            if name in self.mixed:
                value = self.compile_expr(stmt.value)
                self.add_cost(COST_STORE)
                self.emit(ops.STOREX, self.slot[name], self.global_index[name], value, name=name)
                return
            slot = self.slot.get(name)
            if slot is not None:
                self.compile_expr(stmt.value, dst=slot)
                self.add_cost(COST_STORE)
                self.defined.add(name)
                return
            value = self.compile_expr(stmt.value)
            self.add_cost(COST_STORE)
            self.emit(ops.STOREG, self.global_index[name], value, name=name)
            return
        # Array element: the AST tier evaluates the value, charges the store,
        # then evaluates the index and resolves the array — keep that order.
        value = self.compile_expr(stmt.value)
        self.add_cost(COST_STORE)
        idx = self.compile_expr(target.index)
        arr = self._array_reg(target.name)
        if arr is None:
            self.emit(ops.STIDXG, self.global_index[target.name], idx, value, name=target.name)
        else:
            self.emit(ops.STIDX, arr, idx, value, name=target.name)

    def emit_jf(self, cond, label: _Label, cf=None) -> None:
        self.flush_charges()
        self.emit(ops.JF, cond, label)
        self.out_cf[-1] = cf

    # -- finalize -----------------------------------------------------------

    def compile(self) -> FuncCode:
        if self.fn.body is not None:
            self.compile_stmt(self.fn.body)
        self.flush_charges()
        self.emit(ops.RETK, 0)
        self._peephole()

        n_locals = len(self.local_names)
        const_base = n_locals + self.n_temps

        def remap(v):
            if isinstance(v, tuple):
                if len(v) == 2 and v[0] == "t" and type(v[1]) is int:
                    return n_locals + v[1]
                if len(v) == 2 and v[0] == "k" and type(v[1]) is int:
                    return const_base + v[1]
                return tuple(remap(x) for x in v)
            if isinstance(v, _Label):
                return v.pc
            return v

        # Assign pcs to the labels, then drop the markers.
        pc = 0
        for item in self.out:
            if isinstance(item, _Label):
                item.pc = pc
            else:
                pc += 1
        code = []
        names: dict[int, str] = {}
        cf: dict[int, tuple] = {}
        for item, src_name, src_cf in zip(self.out, self.out_names, self.out_cf):
            if isinstance(item, _Label):
                continue
            op, a, b, c = item
            if src_name is not None:
                names[len(code)] = src_name
            if src_cf is not None:
                kind, merge, head = src_cf
                cf[len(code)] = (kind, merge.pc, head.pc if head is not None else -1)
            code.append((op, remap(a), remap(b), remap(c)))

        from repro.sim.bytecode.vm import UNDEF

        proto = tuple([UNDEF] * n_locals + [0] * self.n_temps + list(self.const_values))
        return FuncCode(
            name=self.fn.name,
            code=tuple(code),
            proto=proto,
            param_slots=self.param_slots,
            n_locals=n_locals,
            local_names=tuple(self.local_names),
            names=names,
            cf=cf,
        )

    def _peephole(self) -> None:
        """Fuse compare+branch pairs (optionally separated by one CHARGE).

        A ``CHARGE`` between the compare and the branch commutes with the
        compare (one touches only the work accumulator, the other only
        registers), so ``CMP t / CHARGE n / JF t`` becomes
        ``CHARGE n / J??_F``.
        """
        out, out_names, out_cf = self.out, self.out_names, self.out_cf

        def is_temp(v):
            return isinstance(v, tuple) and len(v) == 2 and v[0] == "t"

        i = 0
        while i < len(out) - 1:
            cur = out[i]
            if isinstance(cur, _Label):
                i += 1
                continue
            fused = _CMP_TO_FUSED.get(cur[0])
            if fused is None or not is_temp(cur[1]):
                i += 1
                continue
            j = i + 1
            mid = out[j]
            if (
                not isinstance(mid, _Label)
                and mid[0] == ops.CHARGE
                and j + 1 < len(out)
            ):
                j += 1
            nxt = out[j]
            if not isinstance(nxt, _Label) and nxt[0] == ops.JF and nxt[1] == cur[1]:
                # The fused op replaces the JF in place, so the JF's cf tag
                # (at index j) survives untouched; only the compare's slot
                # (always untagged) is deleted.
                out[j] = [fused, cur[2], cur[3], nxt[2]]
                out_names[j] = out_names[i]
                del out[i]
                del out_names[i]
                del out_cf[i]
                continue
            i += 1
