"""Table-driven opcode dispatch shared by the scalar VM and lockstep tier.

One :data:`OP_TABLE` entry per opcode carries

* the scalar handler body (source text), from which the per-rank dispatch
  core :data:`DISPATCH_CORE` is code-generated at import time, and
* a **fusability class** telling the lockstep tier (and the disassembler's
  ``fusability`` annotations) how the op behaves under SIMD-over-ranks
  execution.

Generating the core instead of hand-writing the ``elif`` ladder buys two
things: the opcode numbers are inlined as integer literals (the historical
ladder paid a global + attribute load per ``op == ops.X`` comparison), and
the exact same handler source can be re-entered mid-program — the core
runs off an explicit :class:`ScalarState`, which is how drained lockstep
lanes resume on a real :class:`~repro.sim.bytecode.vm.BytecodeInterp`
from an arbitrary program point.

Handler bodies must mirror the AST tier exactly; see the bit-identity
recipe in DESIGN.md §9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InterpError
from repro.sim.bytecode import ops
from repro.sim.interp import MpiRequest


class _Undef:
    """Sentinel for a local slot that has not been written yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNDEF"


UNDEF = _Undef()


class ScalarState:
    """Explicit machine state for one rank's dispatch core.

    ``BytecodeInterp.run`` builds one per program run; the lockstep tier
    builds them mid-flight when a diverged lane leaves the fused batch.
    """

    __slots__ = ("glist", "fc", "code", "regs", "pc", "stack", "trace",
                 "mpi", "finished")

    def __init__(self, glist, fc, code, regs, pc, stack, trace):
        self.glist = glist
        self.fc = fc
        self.code = code
        self.regs = regs
        self.pc = pc
        self.stack = stack  # saved caller frames: (code, regs, pc, dst, fc, trace)
        self.trace = trace
        #: (dst_reg, spelled_name, t0, size) of the in-flight MPI op, synced
        #: just before each yield so the lockstep tier can re-fuse the lane
        self.mpi = None
        self.finished = False


# Fusability classes for the lockstep tier / disassembler annotations.
FUSE_VECTOR = "vector"          # executes under any lane mask
FUSE_BRANCH = "branch"          # fusable; a varying outcome opens a mask frame
FUSE_CALL = "call"              # fusable; divergent returns force a drain
FUSE_RENDEZVOUS = "rendezvous"  # needs the full batch converged (MPI)
FUSE_OBSERVE = "observe"        # needs the full batch converged (probes/IO/clock)
FUSE_DIVERGE = "diverge"        # always drains diverged lanes (indirect calls)


@dataclass(frozen=True, slots=True)
class OpSpec:
    """One opcode's dispatch-table entry."""

    name: str
    codes: tuple
    fuse: str
    body: str


def _spec(name: str, fuse: str, body: str, *extra_codes) -> OpSpec:
    return OpSpec(
        name=name,
        codes=(getattr(ops, name),) + tuple(getattr(ops, x) for x in extra_codes),
        fuse=fuse,
        body=body,
    )


#: dispatch table in hot-first order (the generated ladder tests in order)
OP_TABLE = (
    _spec("CHARGE", FUSE_VECTOR, """\
pend_h += a
tot_h += a
"""),
    _spec("MOVE", FUSE_VECTOR, """\
regs[a] = regs[b]
"""),
    _spec("ADD", FUSE_VECTOR, """\
regs[a] = regs[b] + regs[c]
"""),
    _spec("SUB", FUSE_VECTOR, """\
regs[a] = regs[b] - regs[c]
"""),
    _spec("MUL", FUSE_VECTOR, """\
regs[a] = regs[b] * regs[c]
"""),
    _spec("INDEX", FUSE_VECTOR, """\
arr = regs[b]
if type(arr) is not list:
    self._bad_array(fc, pc - 1)
regs[a] = arr[int(regs[c]) % len(arr)]
"""),
    _spec("INDEXG", FUSE_VECTOR, """\
arr = glist[b]
if type(arr) is not list:
    self._bad_array(fc, pc - 1)
regs[a] = arr[int(regs[c]) % len(arr)]
"""),
    _spec("STIDX", FUSE_VECTOR, """\
arr = regs[a]
if type(arr) is not list:
    self._bad_array(fc, pc - 1)
arr[int(regs[b]) % len(arr)] = regs[c]
"""),
    _spec("STIDXG", FUSE_VECTOR, """\
arr = glist[a]
if type(arr) is not list:
    self._bad_array(fc, pc - 1)
arr[int(regs[b]) % len(arr)] = regs[c]
"""),
    _spec("JLT_F", FUSE_BRANCH, """\
if not (regs[a] < regs[b]):
    pc = c
"""),
    _spec("JLE_F", FUSE_BRANCH, """\
if not (regs[a] <= regs[b]):
    pc = c
"""),
    _spec("JGT_F", FUSE_BRANCH, """\
if not (regs[a] > regs[b]):
    pc = c
"""),
    _spec("JGE_F", FUSE_BRANCH, """\
if not (regs[a] >= regs[b]):
    pc = c
"""),
    _spec("JEQ_F", FUSE_BRANCH, """\
if not (regs[a] == regs[b]):
    pc = c
"""),
    _spec("JNE_F", FUSE_BRANCH, """\
if not (regs[a] != regs[b]):
    pc = c
"""),
    _spec("JUMP", FUSE_BRANCH, """\
pc = a
"""),
    _spec("JF", FUSE_BRANCH, """\
if not regs[a]:
    pc = b
"""),
    _spec("JT", FUSE_BRANCH, """\
if regs[a]:
    pc = b
"""),
    _spec("CU", FUSE_VECTOR, """\
units = max(0.0, float(regs[a])) if a >= 0 else 0.0
doubled = units + units
if doubled < 1e15 and doubled == int(doubled):
    n = int(doubled)
    pend_h += n
    tot_h += n
else:
    self._pending_frac += units
    self._total_frac += units
"""),
    _spec("DIV", FUSE_VECTOR, """\
left = regs[b]
right = regs[c]
if right == 0:
    regs[a] = 0
elif type(left) is int and type(right) is int:
    regs[a] = (
        left // right
        if (left >= 0) == (right >= 0)
        else -((-left) // right)
    )
else:
    regs[a] = left / right
"""),
    _spec("MOD", FUSE_VECTOR, """\
right = regs[c]
regs[a] = regs[b] % right if right != 0 else 0
"""),
    _spec("LT", FUSE_VECTOR, """\
regs[a] = 1 if regs[b] < regs[c] else 0
"""),
    _spec("LE", FUSE_VECTOR, """\
regs[a] = 1 if regs[b] <= regs[c] else 0
"""),
    _spec("GT", FUSE_VECTOR, """\
regs[a] = 1 if regs[b] > regs[c] else 0
"""),
    _spec("GE", FUSE_VECTOR, """\
regs[a] = 1 if regs[b] >= regs[c] else 0
"""),
    _spec("EQ", FUSE_VECTOR, """\
regs[a] = 1 if regs[b] == regs[c] else 0
"""),
    _spec("NE", FUSE_VECTOR, """\
regs[a] = 1 if regs[b] != regs[c] else 0
"""),
    _spec("ANDL", FUSE_VECTOR, """\
regs[a] = 1 if (regs[b] and regs[c]) else 0
"""),
    _spec("ORL", FUSE_VECTOR, """\
regs[a] = 1 if (regs[b] or regs[c]) else 0
"""),
    _spec("NEG", FUSE_VECTOR, """\
regs[a] = -regs[b]
"""),
    _spec("NOTL", FUSE_VECTOR, """\
regs[a] = 0 if regs[b] else 1
"""),
    _spec("LOADG", FUSE_VECTOR, """\
regs[a] = glist[b]
"""),
    _spec("STOREG", FUSE_VECTOR, """\
glist[a] = regs[b]
"""),
    _spec("CHKDEF", FUSE_VECTOR, """\
if regs[a] is undef:
    raise InterpError(
        f"rank {rank}: read of undefined variable "
        f"{fc.names.get(pc - 1, '?')!r}"
    )
"""),
    _spec("LOADX", FUSE_VECTOR, """\
value = regs[b]
regs[a] = glist[c] if value is undef else value
"""),
    _spec("STOREX", FUSE_VECTOR, """\
if regs[a] is undef:
    glist[b] = regs[c]
else:
    regs[a] = regs[c]
"""),
    _spec("NEWARR", FUSE_VECTOR, """\
regs[a] = [c] * b
"""),
    _spec("MATHOP", FUSE_VECTOR, """\
pend_h += 4
tot_h += 4
try:
    regs[a] = b(*[regs[i] for i in c])
except (ValueError, OverflowError):
    regs[a] = 0.0
"""),
    _spec("CALL", FUSE_CALL, """\
callee = funcs[b]
nregs = list(callee.proto)
n_args = len(c)
for i, slot in enumerate(callee.param_slots):
    nregs[slot] = regs[c[i]] if i < n_args else 0
stack.append((code, regs, pc, a, fc, trace))
fc = callee
code = callee.code
regs = nregs
pc = 0
trace = hooks.wants_function_events
if trace:
    hooks.on_func_enter(rank, fc.name, clock.now)
"""),
    _spec("RET", FUSE_CALL, """\
value = regs[a] if op == __RET__ else a
if trace:
    hooks.on_func_exit(rank, fc.name, clock.now)
if not stack:
    break
code, regs, pc, dst, fc, trace = stack.pop()
regs[dst] = value
""", "RETK"),
    _spec("RANKOP", FUSE_VECTOR, """\
self._pending_frac += 0.1
self._total_frac += 0.1
regs[a] = rank
"""),
    _spec("SIZEOP", FUSE_VECTOR, """\
self._pending_frac += 0.1
self._total_frac += 0.1
regs[a] = self.n_ranks
"""),
    _spec("WTIME", FUSE_OBSERVE, """\
self._pending_half = pend_h
self._total_half = tot_h
self._flush()
pend_h = 0
regs[a] = clock.now
"""),
    _spec("COLL", FUSE_RENDEZVOUS, """\
self._pending_half = pend_h
self._total_half = tot_h
self._flush()
pend_h = 0
engine_op, spelled = b
size = float(regs[c]) if c >= 0 else 0.0
t0 = clock.now
hooks.on_mpi_begin(rank, spelled, t0)
state.fc = fc
state.code = code
state.regs = regs
state.pc = pc
state.stack = stack
state.trace = trace
state.mpi = (a, spelled, t0, size)
completion = yield MpiRequest(
    rank=rank, op=engine_op, size=size, peer=-1, arrive=t0
)
clock.wait_until(completion)
hooks.on_mpi_end(rank, spelled, t0, clock.now, size)
regs[a] = 0
"""),
    _spec("P2P", FUSE_RENDEZVOUS, """\
self._pending_half = pend_h
self._total_half = tot_h
self._flush()
pend_h = 0
engine_op, spelled = b
peer_reg, size_reg = c
peer = (int(regs[peer_reg]) if peer_reg >= 0 else 0) % nmod
size = float(regs[size_reg]) if size_reg >= 0 else 0.0
t0 = clock.now
hooks.on_mpi_begin(rank, spelled, t0)
state.fc = fc
state.code = code
state.regs = regs
state.pc = pc
state.stack = stack
state.trace = trace
state.mpi = (a, spelled, t0, size)
completion = yield MpiRequest(
    rank=rank, op=engine_op, size=size, peer=peer, arrive=t0
)
clock.wait_until(completion)
hooks.on_mpi_end(rank, spelled, t0, clock.now, size)
regs[a] = 0
"""),
    _spec("TICKOP", FUSE_OBSERVE, """\
self._pending_half = pend_h
self._total_half = tot_h
self._probe_tick(int(regs[a]))
pend_h = self._pending_half
tot_h = self._total_half
"""),
    _spec("TOCKOP", FUSE_OBSERVE, """\
self._pending_half = pend_h
self._total_half = tot_h
self._probe_tock(int(regs[a]))
pend_h = self._pending_half
tot_h = self._total_half
"""),
    _spec("IOOP", FUSE_OBSERVE, """\
self._pending_half = pend_h
self._total_half = tot_h
size = float(regs[c]) if c >= 0 else 1.0
self._io_op(b, size)
pend_h = 0
regs[a] = 0
"""),
    _spec("RANDOP", FUSE_VECTOR, """\
pend_h += 1
tot_h += 1
regs[a] = int(rng.integers(0, 2**31 - 1))
"""),
    _spec("CLOCKOP", FUSE_OBSERVE, """\
self._pending_half = pend_h
self._total_half = tot_h
self._flush()
pend_h = 0
regs[a] = int(clock.now)
"""),
    _spec("HOSTOP", FUSE_VECTOR, """\
pend_h += 1
tot_h += 1
regs[a] = clock.node.node_id
"""),
    _spec("RESFP", FUSE_VECTOR, """\
slot, gidx = b
value = None
if slot >= 0:
    value = regs[slot]
    if value is undef:
        value = glist[gidx] if gidx >= 0 else None
elif gidx >= 0:
    value = glist[gidx]
regs[a] = (
    func_index.get(value, -1) if type(value) is str else -1
)
"""),
    _spec("CALLIND", FUSE_DIVERGE, """\
target = regs[b]
meta, arg_regs = c
if target >= 0:
    callee = funcs[target]
    nregs = list(callee.proto)
    n_args = len(arg_regs)
    for i, slot in enumerate(callee.param_slots):
        nregs[slot] = regs[arg_regs[i]] if i < n_args else 0
    stack.append((code, regs, pc, a, fc, trace))
    fc = callee
    code = callee.code
    regs = nregs
    pc = 0
    trace = hooks.wants_function_events
    if trace:
        hooks.on_func_enter(rank, fc.name, clock.now)
else:
    pend_h, tot_h = self._extern(
        meta, [regs[i] for i in arg_regs], pend_h, tot_h
    )
    regs[a] = 0
"""),
    _spec("EXTCALL", FUSE_OBSERVE, """\
pend_h, tot_h = self._extern(
    b, [regs[i] for i in c], pend_h, tot_h
)
regs[a] = 0
"""),
)

#: opcode -> OpSpec (RETK maps to the shared RET spec)
OP_SPECS: dict[int, OpSpec] = {
    code: spec for spec in OP_TABLE for code in spec.codes
}


def fuse_class(op: int) -> str | None:
    """Fusability class of ``op``, or None for unknown/unused opcodes."""
    spec = OP_SPECS.get(op)
    return spec.fuse if spec is not None else None


def _render_core_source() -> str:
    lines = [
        "def _dispatch_core(self, state):",
        "    program = self.program",
        "    funcs = program.funcs",
        "    func_index = program.func_index",
        "    rank = self.rank",
        "    clock = self.clock",
        "    hooks = self.hooks",
        "    rng = self._rng",
        "    undef = UNDEF",
        "    nmod = max(1, self.n_ranks)",
        "    glist = state.glist",
        "    fc = state.fc",
        "    code = state.code",
        "    regs = state.regs",
        "    pc = state.pc",
        "    stack = state.stack",
        "    trace = state.trace",
        "    pend_h = self._pending_half",
        "    tot_h = self._total_half",
        "    while True:",
        "        op, a, b, c = code[pc]",
        "        pc += 1",
    ]
    kw = "if"
    for spec in OP_TABLE:
        cond = " or ".join(f"op == {code}" for code in spec.codes)
        lines.append(f"        {kw} {cond}:  # {spec.name}")
        body = spec.body.replace("__RET__", str(ops.RET))
        for body_line in body.rstrip("\n").split("\n"):
            lines.append(f"            {body_line}" if body_line else "")
        kw = "elif"
    lines += [
        "        else:  # pragma: no cover - compiler never emits unknown ops",
        "            raise InterpError(f'bad opcode {op}')",
        "    self._pending_half = pend_h",
        "    self._total_half = tot_h",
        "    self._flush()",
        "    hooks.on_program_end(rank, clock.now)",
        "    state.fc = fc",
        "    state.code = code",
        "    state.regs = regs",
        "    state.pc = pc",
        "    state.trace = trace",
        "    state.finished = True",
    ]
    return "\n".join(lines) + "\n"


def _build_core():
    source = _render_core_source()
    namespace = {
        "MpiRequest": MpiRequest,
        "InterpError": InterpError,
        "UNDEF": UNDEF,
    }
    exec(compile(source, "<bytecode-dispatch>", "exec"), namespace)
    return namespace["_dispatch_core"]


#: the generated per-rank dispatch core (a generator function taking
#: ``(self, state)``) — installed as ``BytecodeInterp._dispatch_core``
DISPATCH_CORE = _build_core()
