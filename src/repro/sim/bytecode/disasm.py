"""Human-readable listing of compiled bytecode.

Output is deterministic (extern models and math callables are printed by
name, never by object repr) so golden tests can pin it exactly.
"""

from __future__ import annotations

from repro.sim.bytecode import ops


def _fmt(value) -> str:
    if value is None:
        return "_"
    if isinstance(value, tuple):
        return "(" + ", ".join(_fmt(v) for v in value) + ")"
    if isinstance(value, (int, float, str)):
        return repr(value)
    name = getattr(value, "name", None)
    if isinstance(name, str):  # ExternModel and friends
        return f"<extern {name}>"
    if callable(value):
        return f"<fn {getattr(value, '__name__', '?')}>"
    return repr(value)  # pragma: no cover - no other operand kinds exist


def disassemble_function(fc) -> str:
    """One function's listing: header, register map, instructions."""
    header = (
        f"func {fc.name}  "
        f"(locals={fc.n_locals} regs={len(fc.proto)} insns={len(fc.code)})"
    )
    lines = [header]
    if fc.local_names:
        pairs = ", ".join(f"r{i}={n}" for i, n in enumerate(fc.local_names))
        lines.append(f"  ; locals: {pairs}")
    for pc, (op, a, b, c) in enumerate(fc.code):
        mnemonic = ops.NAMES.get(op, f"OP{op}")
        operands = " ".join(
            _fmt(v) for v in (a, b, c) if v is not None
        )
        note = fc.names.get(pc)
        suffix = f"   ; {note}" if note else ""
        lines.append(f"  {pc:4d}  {mnemonic:<8s} {operands}{suffix}")
    return "\n".join(lines)


def disassemble(program) -> str:
    """Listing for every function of a compiled program."""
    return "\n\n".join(disassemble_function(fc) for fc in program.funcs)
