"""Human-readable listing of compiled bytecode.

Output is deterministic (extern models and math callables are printed by
name, never by object repr) so golden tests can pin it exactly.

With ``fuse=True`` each instruction is additionally annotated with its
lockstep fusability class (see :mod:`repro.sim.bytecode.dispatch`): whether
the SIMD-over-ranks tier can execute it under a lane mask, needs the whole
batch converged, or must drain diverged lanes onto scalar interpreters.
"""

from __future__ import annotations

from repro.sim.bytecode import ops
from repro.sim.bytecode.dispatch import (
    FUSE_DIVERGE,
    FUSE_OBSERVE,
    FUSE_RENDEZVOUS,
    fuse_class,
)

#: fusability class -> short listing annotation
_FUSE_NOTES = {
    FUSE_RENDEZVOUS: "convergence point (MPI rendezvous)",
    FUSE_OBSERVE: "convergence point (observes clock/hooks)",
    FUSE_DIVERGE: "forced divergence (drains lanes)",
}


def _fmt(value) -> str:
    if value is None:
        return "_"
    if isinstance(value, tuple):
        return "(" + ", ".join(_fmt(v) for v in value) + ")"
    if isinstance(value, (int, float, str)):
        return repr(value)
    name = getattr(value, "name", None)
    if isinstance(name, str):  # ExternModel and friends
        return f"<extern {name}>"
    if callable(value):
        return f"<fn {getattr(value, '__name__', '?')}>"
    return repr(value)  # pragma: no cover - no other operand kinds exist


def disassemble_function(fc, fuse: bool = False) -> str:
    """One function's listing: header, register map, instructions.

    ``fuse=True`` appends each instruction's lockstep fusability class
    (``[vector]``, ``[rendezvous]``, …) plus a note on the classes that
    interrupt fused execution, and a per-function tally line.
    """
    header = (
        f"func {fc.name}  "
        f"(locals={fc.n_locals} regs={len(fc.proto)} insns={len(fc.code)})"
    )
    lines = [header]
    if fc.local_names:
        pairs = ", ".join(f"r{i}={n}" for i, n in enumerate(fc.local_names))
        lines.append(f"  ; locals: {pairs}")
    for pc, (op, a, b, c) in enumerate(fc.code):
        mnemonic = ops.NAMES.get(op, f"OP{op}")
        operands = " ".join(
            _fmt(v) for v in (a, b, c) if v is not None
        )
        note = fc.names.get(pc)
        suffix = f"   ; {note}" if note else ""
        if fuse:
            cls = fuse_class(op) or "?"
            extra = _FUSE_NOTES.get(cls)
            tail = f" — {extra}" if extra else ""
            suffix += f"   ; [{cls}]{tail}"
        lines.append(f"  {pc:4d}  {mnemonic:<8s} {operands}{suffix}")
    if fuse:
        counts = fusability_counts(fc.code)
        tally = " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        lines.append(f"  ; fusability: {tally}")
    return "\n".join(lines)


def disassemble(program, fuse: bool = False) -> str:
    """Listing for every function of a compiled program."""
    return "\n\n".join(disassemble_function(fc, fuse=fuse) for fc in program.funcs)


def fusability_counts(code) -> dict[str, int]:
    """Instruction tally per lockstep fusability class for one code tuple."""
    counts: dict[str, int] = {}
    for op, _a, _b, _c in code:
        cls = fuse_class(op) or "?"
        counts[cls] = counts.get(cls, 0) + 1
    return counts


def fusability_summary(program) -> dict[str, int]:
    """Whole-program fusability tally (sum of every function's counts)."""
    totals: dict[str, int] = {}
    for fc in program.funcs:
        for cls, n in fusability_counts(fc.code).items():
            totals[cls] = totals.get(cls, 0) + n
    return totals
