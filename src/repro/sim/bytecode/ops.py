"""Opcode numbering for the register VM.

Every instruction is a 4-tuple ``(op, a, b, c)``; unused fields are None.
Register operands index one flat per-frame list laid out as
``[locals | temps | consts]`` — constants are materialized once at frame
creation (the prototype list is copied), so operand fetch is always a plain
list index.  Numbering groups the hottest opcodes first purely for the
benefit of the VM's dispatch ladder.
"""

from __future__ import annotations

# Arithmetic / comparison (a=dst, b=lhs, c=rhs).  The comparison and logic
# forms produce int 1/0 like the AST tier; ANDL/ORL are non-short-circuit
# (both operands are already evaluated), exactly like `_binop`.
ADD = 0
SUB = 1
MUL = 2
DIV = 3
MOD = 4
LT = 5
LE = 6
GT = 7
GE = 8
EQ = 9
NE = 10
ANDL = 11
ORL = 12
NEG = 13   # a=dst, b=operand
NOTL = 14  # a=dst, b=operand

#: one folded basic-block work charge: a = integer count of half work units
CHARGE = 15

JUMP = 16   # a=target
JF = 17     # a=reg, b=target  (jump when falsy)
JT = 18     # a=reg, b=target  (jump when truthy)
# fused compare-and-branch: jump to c when the comparison is FALSE
JLT_F = 19  # a=lhs, b=rhs, c=target
JLE_F = 20
JGT_F = 21
JGE_F = 22
JEQ_F = 23
JNE_F = 24

MOVE = 25    # a=dst, b=src
LOADG = 26   # a=dst, b=global index
STOREG = 27  # a=global index, b=src
CHKDEF = 28  # a=slot — raise "read of undefined variable" if still UNDEF
LOADX = 29   # a=dst, b=slot, c=global index (local shadowing a global)
STOREX = 30  # a=slot, b=global index, c=src

INDEX = 31   # a=dst, b=array reg, c=index reg
STIDX = 32   # a=array reg, b=index reg, c=value reg
INDEXG = 33  # a=dst, b=global index, c=index reg
STIDXG = 34  # a=global index, b=index reg, c=value reg
NEWARR = 35  # a=slot, b=size, c=fill value

CALL = 36     # a=dst, b=function index, c=arg regs tuple
CALLIND = 37  # a=dst, b=funcptr reg (RESFP result), c=((name, model), arg regs)
RET = 38      # a=src
RETK = 39     # a=literal return value

CU = 40      # compute_units: a=arg reg or -1
TICKOP = 41  # a=sensor-id reg
TOCKOP = 42  # a=sensor-id reg
RANKOP = 43  # a=dst
SIZEOP = 44  # a=dst
WTIME = 45   # a=dst
COLL = 46    # a=dst, b=(engine op, spelled name), c=size reg or -1
P2P = 47     # a=dst, b=(engine op, spelled name), c=(peer reg|-1, size reg|-1)
MATHOP = 48  # a=dst, b=callable, c=arg regs tuple (already sliced)
IOOP = 49    # a=dst, b=op name, c=size reg or -1
RANDOP = 50  # a=dst
SRANDOP = 51  # a=dst (unused: srand lowers to nothing, kept for numbering)
CLOCKOP = 52  # a=dst
HOSTOP = 53   # a=dst
EXTCALL = 54  # a=dst, b=(name, ExternModel | None), c=arg regs tuple
# Resolve a funcptr variable before argument evaluation (the AST tier reads
# the variable first, so an argument expression reassigning it must not
# change the call target): a=dst temp, b=(slot | -1, global index | -1).
# The dst receives the resolved function index, or -1 on miss.
RESFP = 55

#: mnemonic table for the disassembler
NAMES = {
    value: name
    for name, value in list(globals().items())
    if name.isupper() and isinstance(value, int) and name != "NAMES"
}
