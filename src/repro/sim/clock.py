"""Per-rank virtual clock: converting work units to elapsed time.

Work accumulated by the interpreter is converted lazily (at probe / MPI
boundaries) by integrating the node's effective speed over time.  The
effective speed at instant ``t`` is::

    cpu_speed * noise_jitter(t) * fault_cpu(t)
      blended with mem_perf * fault_mem(t) over the memory-bound fraction

Integration proceeds slice by slice (noise jitter slices, fault window
edges) so episodic faults show up exactly where they are injected, and
periodic-interrupt loss is added per window.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.sim.faults import Fault, cpu_factor_at, fault_boundaries, mem_factor_at
from repro.sim.machine import MachineConfig, NodeConfig
from repro.sim.noise import NodeNoise


@dataclass(slots=True)
class RankClock:
    """Virtual clock of one rank."""

    rank: int
    node: NodeConfig
    noise: NodeNoise
    machine: MachineConfig
    faults: tuple[Fault, ...]
    now: float = 0.0
    #: fault window edges, computed once (the fault set is fixed per run)
    _edges: tuple[float, ...] | None = field(default=None, repr=False)

    def advance_compute(self, work_units: float) -> tuple[float, float]:
        """Advance by ``work_units`` of computation; return (start, end)."""
        start = self.now
        if work_units <= 0:
            return start, start
        t = self.now
        remaining = work_units
        slice_us = max(1.0, self.machine.noise.jitter_slice_us)
        edges = self._edges
        if edges is None:
            edges = self._edges = tuple(fault_boundaries(self.faults))
        n_edges = len(edges)
        edge_i = bisect_right(edges, t) if n_edges else 0
        # Hot loop: one step per jitter slice.  Lookups are hoisted and the
        # speed blend inlined; with no faults the factor calls are skipped
        # (they would return exactly 1.0).
        faults = self.faults
        node_id = self.node.node_id
        cpu_speed = self.node.cpu_speed
        mem_perf = self.node.mem_perf
        frac = self.machine.mem_fraction
        speed_multiplier = self.noise.speed_multiplier
        # Hard cap on integration steps to guarantee termination even with
        # pathological (zero-speed) configurations.
        for _ in range(10_000_000):
            if faults:
                cpu = cpu_speed * cpu_factor_at(faults, node_id, t)
                cpu *= speed_multiplier(t)
                mem = mem_perf * mem_factor_at(faults, node_id, t)
            else:
                cpu = cpu_speed * speed_multiplier(t)
                mem = mem_perf
            denom = (1.0 - frac) / max(cpu, 1e-9) + frac / max(cpu * mem, 1e-9)
            speed = 1.0 / denom
            # Next boundary where speed may change.
            boundary = (int(t / slice_us) + 1) * slice_us
            while edge_i < n_edges and edges[edge_i] <= t:
                edge_i += 1
            if edge_i < n_edges and edges[edge_i] < boundary:
                boundary = edges[edge_i]
            dt_max = boundary - t
            dt_needed = remaining / max(speed, 1e-9)
            if dt_needed <= dt_max:
                t += dt_needed
                remaining = 0.0
                break
            remaining -= speed * dt_max
            t = boundary
        # Periodic interrupt loss stretches the window.
        t += self.noise.interrupt_loss(start, t)
        self.now = t
        return start, t

    def advance_wall(self, duration_us: float) -> tuple[float, float]:
        """Advance by a fixed wall duration (IO waits, comm completions)."""
        start = self.now
        self.now = start + max(0.0, duration_us)
        return start, self.now

    def wait_until(self, t: float) -> None:
        if t > self.now:
            self.now = t

    def _effective_speed(self, t: float) -> float:
        cpu = self.node.cpu_speed * cpu_factor_at(self.faults, self.node.node_id, t)
        cpu *= self.noise.speed_multiplier(t)
        mem = self.node.mem_perf * mem_factor_at(self.faults, self.node.node_id, t)
        frac = self.machine.mem_fraction
        # A job split between CPU-bound and memory-bound fractions: total
        # time = work * (cpu_frac/cpu_speed + mem_frac/mem_speed).
        denom = (1.0 - frac) / max(cpu, 1e-9) + frac / max(cpu * mem, 1e-9)
        return 1.0 / denom
