"""The fused SIMD-over-ranks VM: one fetch, all ranks.

Value representation
--------------------
A register/global slot holds either a **uniform** value (a plain Python
scalar, string, or list shared by every lane) or a **varying** value: a
``(n_ranks,)`` object-dtype ndarray with one Python value per lane.  Object
dtype means NumPy applies the *Python* operators element-wise, so per-lane
arithmetic is exactly the scalar tier's (arbitrary-precision ints, Python
float semantics) — no dtype analysis, no overflow edge cases.  Arrays in
the mini language stay Python lists (the uniform container); an element
that diverges becomes a varying vector *inside* the list.  Vectors are
copy-on-write: masked stores build a new array, so aliased references
(MOVE copies references, like the scalar tier) never see phantom writes.

Work counters are **hybrid**: uniform integer half-unit charges accumulate
in plain Python ints (``pend_u``/``tot_u``) and masked charges in int64
lane vectors — exact, because integer addition is associative.  The float
residual streams (``pend_frac``/``tot_frac``) are pure per-lane vectors
updated in program order; splitting them would change rounding.

Control flow
------------
A varying conditional with compiler reconvergence metadata (``FuncCode.cf``)
pushes a mask frame and execution continues under a lane mask; lanes park
at the merge point (if) or loop exit and are restored when the active set
arrives there.  Anything that cannot run under a partial mask — MPI,
probes, IO, wall-clock reads, extern calls, divergent returns, indirect
calls, unstructured jumps — **spills**: every lane is materialized into a
:class:`~repro.sim.bytecode.dispatch.ScalarState` and drained on its own
:class:`BytecodeInterp` (sharing clock/PMU/RNG objects with the batch the
whole time), to be re-fused by the runner at the next full-width
collective.  See DESIGN.md §9 for the full lifecycle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InterpError
from repro.sim.bytecode.dispatch import UNDEF, ScalarState
from repro.sim.interp import MpiRequest

_ND = np.ndarray


def _obj_vec(values: list) -> np.ndarray:
    """Object vector from per-lane values (which may themselves be lists)."""
    arr = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        arr[i] = v
    return arr


def _broadcast(value, n: int) -> np.ndarray:
    """Uniform value -> varying vector (every lane the same object)."""
    arr = np.empty(n, dtype=object)
    if type(value) is list:
        for i in range(n):
            arr[i] = value
    else:
        arr[:] = value
    return arr


def _lane_get(value, pos: int):
    """Extract lane ``pos``'s scalar view of a Value (lists are cloned)."""
    if type(value) is _ND:
        return value[pos]
    if type(value) is list:
        return [_lane_get(e, pos) for e in value]
    return value


def _merge_lanes(values: list, n: int):
    """Per-lane scalars -> uniform value if all equal, else a vector."""
    first = values[0]
    tf = type(first)
    if tf is list:
        if all(type(v) is list and len(v) == len(first) for v in values):
            return [_merge_lanes([v[j] for v in values], n) for j in range(len(first))]
        return _obj_vec(values)
    for v in values[1:]:
        if v is first:
            continue
        if type(v) is not tf:
            return _obj_vec(values)
        try:
            if v != first:
                return _obj_vec(values)
        except (TypeError, ValueError):  # pragma: no cover - exotic values
            return _obj_vec(values)
    return first


class _MaskFrame:
    """One level of structured divergence (an ``if`` or a loop)."""

    __slots__ = ("kind", "code", "fc", "depth", "start", "merge", "head",
                 "entry", "pending", "ppc")

    def __init__(self, kind, code, fc, depth, start, merge, head, entry,
                 pending, ppc):
        self.kind = kind        # "if" | "loop"
        self.code = code        # code object the frame belongs to
        self.fc = fc
        self.depth = depth      # len(call stack) at push
        self.start = start      # pc of the conditional jump
        self.merge = merge      # reconvergence pc
        self.head = head        # loop header pc (-1 for ifs)
        self.entry = entry      # lanes active when the frame was pushed
        self.pending = pending  # if: untaken-side lanes awaiting execution
        self.ppc = ppc          # if: pc of the untaken side


class FusedVM:
    """Vectorized execution of one batch covering every rank."""

    def __init__(self, runner):
        self.runner = runner
        self.interps = runner.interps
        self.clocks = runner.clocks
        self.n = len(self.interps)
        first = self.interps[0]
        self.program = first.program
        self.funcs = self.program.funcs
        self.func_index = self.program.func_index
        self.machine = first.machine
        self.network = first.network
        self.faults = first.faults
        #: governor control table shared by every lane (None = no governor)
        self.control = first.probe_control
        self.nmod = max(1, first.n_ranks)
        self.ranks_vec = _obj_vec([i.rank for i in self.interps])
        node_ids = [i.clock.node.node_id for i in self.interps]
        self.node_val = (
            node_ids[0] if len(set(node_ids)) == 1 else _obj_vec(node_ids)
        )
        n = self.n
        self.pend_u = 0
        self.tot_u = 0
        self.pend_v = np.zeros(n, dtype=np.int64)
        self.tot_v = np.zeros(n, dtype=np.int64)
        self.pend_frac = np.zeros(n)
        self.tot_frac = np.zeros(n)
        self.counts = np.zeros(n, dtype=np.int64)
        self.open_ticks: dict = {}
        self.frames: list[_MaskFrame] = []
        self.M = None
        self.stack: list = []
        self.block = None
        self.state = "running"

    # -- construction --------------------------------------------------------

    @classmethod
    def initial(cls, runner):
        vm = cls(runner)
        probe = vm.interps[0]
        entry_idx = vm.program.func_index.get(probe.entry)
        if entry_idx is None:
            raise InterpError(f"no entry function {probe.entry!r}")
        # Global initializer expressions charge work; every rank would
        # charge identically, so run them once and move the charges onto
        # the uniform counters.
        vm.glist = probe._init_globals_list()
        vm.pend_u = probe._pending_half
        vm.tot_u = probe._total_half
        vm.pend_frac[:] = probe._pending_frac
        vm.tot_frac[:] = probe._total_frac
        probe._pending_half = probe._total_half = 0
        probe._pending_frac = probe._total_frac = 0.0
        fc = vm.funcs[entry_idx]
        vm.fc = fc
        vm.code = fc.code
        vm.regs = list(fc.proto)
        vm.pc = 0
        vm.trace = runner.hooks.wants_function_events
        if vm.trace:
            now = vm.clocks.now
            for pos in range(vm.n):
                runner.emit(pos, "on_func_enter",
                            (vm.interps[pos].rank, fc.name, float(now[pos])))
        return vm

    @classmethod
    def from_states(cls, runner, states: list[ScalarState]):
        """Re-fuse: build a batch from per-lane drained states.

        Caller guarantees structural equality (same fc/pc/stack shape).
        Clocks, counters and open probe records are absorbed from the
        per-rank interps, which are authoritative while lanes are drained.
        """
        vm = cls(runner)
        n = vm.n
        t = states[0]
        vm.fc = t.fc
        vm.code = t.code
        vm.pc = t.pc
        vm.trace = t.trace
        vm.regs = [
            _merge_lanes([st.regs[i] for st in states], n)
            for i in range(len(t.regs))
        ]
        vm.glist = [
            _merge_lanes([st.glist[i] for st in states], n)
            for i in range(len(t.glist))
        ]
        vm.stack = [
            (
                ent[0],
                [
                    _merge_lanes([st.stack[d][1][i] for st in states], n)
                    for i in range(len(ent[1]))
                ],
                ent[2], ent[3], ent[4], ent[5],
            )
            for d, ent in enumerate(t.stack)
        ]
        interps = vm.interps
        for pos, interp in enumerate(interps):
            vm.pend_v[pos] = interp._pending_half
            vm.tot_v[pos] = interp._total_half
            vm.pend_frac[pos] = interp._pending_frac
            vm.tot_frac[pos] = interp._total_frac
            vm.counts[pos] = interp.sensor_record_count
            vm.clocks.absorb(pos)
            interp._pending_half = interp._total_half = 0
            interp._pending_frac = interp._total_frac = 0.0
        for sid in interps[0]._open_ticks:
            vm.open_ticks[sid] = (
                np.array([i._open_ticks[sid][0] for i in interps]),
                np.array([i._open_ticks[sid][1] for i in interps], dtype=np.int64),
                np.array([i._open_ticks[sid][2] for i in interps]),
            )
        for interp in interps:
            interp._open_ticks = {}
        return vm

    # -- value plumbing ------------------------------------------------------

    def _mput(self, slot: int, value, M) -> None:
        """Masked store of a full-width (or uniform) value into a register."""
        self.regs[slot] = self._merge_value(self.regs[slot], value, M)

    def _mputc(self, slot: int, res, M) -> None:
        """Masked store of a compact (active-lanes-only) result."""
        old = self.regs[slot]
        new = old.copy() if type(old) is _ND else _broadcast(old, self.n)
        new[M] = res
        self.regs[slot] = new

    def _merge_value(self, old, value, M):
        new = old.copy() if type(old) is _ND else _broadcast(old, self.n)
        if type(value) is _ND:
            new[M] = value[M]
        elif type(value) is list:
            for i in np.nonzero(M)[0]:
                new[i] = value
        else:
            new[M] = value
        return new

    # -- work accounting -----------------------------------------------------

    def _flush_all(self) -> None:
        amounts = (self.pend_u + self.pend_v) * 0.5 + self.pend_frac
        self.clocks.advance_compute(amounts)
        self.pend_u = 0
        self.pend_v[:] = 0
        self.pend_frac[:] = 0.0

    def _charge_uniform(self, units: float) -> None:
        doubled = units + units
        if doubled < 1e15 and doubled == int(doubled):
            k = int(doubled)
            self.pend_u += k
            self.tot_u += k
        else:
            self.pend_frac += units
            self.tot_frac += units

    def _charge_lane(self, pos: int, units: float) -> None:
        doubled = units + units
        if doubled < 1e15 and doubled == int(doubled):
            k = int(doubled)
            self.pend_v[pos] += k
            self.tot_v[pos] += k
        else:
            self.pend_frac[pos] += units
            self.tot_frac[pos] += units

    # -- the full-width interpreter loop -------------------------------------

    def run(self) -> None:
        while self.state == "running":
            if self.M is None:
                self._run_full()
            else:
                self._run_masked()

    def _run_full(self) -> None:  # noqa: C901 - the dispatch ladder
        runner = self.runner
        interps = self.interps
        clocks = self.clocks
        n = self.n
        funcs = self.funcs
        undef = UNDEF
        nd = _ND
        emit = runner.emit
        glist = self.glist
        fc = self.fc
        code = self.code
        regs = self.regs
        pc = self.pc
        stack = self.stack
        trace = self.trace
        pend_u = self.pend_u
        tot_u = self.tot_u

        def sync():
            self.fc = fc
            self.code = code
            self.regs = regs
            self.pc = pc
            self.trace = trace
            self.pend_u = pend_u
            self.tot_u = tot_u

        while True:
            op, a, b, c = code[pc]
            pc += 1
            if op == 15:  # CHARGE
                pend_u += a
                tot_u += a
            elif op == 25:  # MOVE
                regs[a] = regs[b]
            elif op == 0:  # ADD
                regs[a] = regs[b] + regs[c]
            elif op == 1:  # SUB
                regs[a] = regs[b] - regs[c]
            elif op == 2:  # MUL
                regs[a] = regs[b] * regs[c]
            elif op == 31 or op == 33:  # INDEX / INDEXG
                arr = regs[b] if op == 31 else glist[b]
                if type(arr) is not list:
                    sync()
                    return self._spill(pc - 1)
                idx = regs[c]
                if type(idx) is nd:
                    ln = len(arr)
                    out = []
                    for pos in range(n):
                        e = arr[int(idx[pos]) % ln]
                        out.append(e[pos] if type(e) is nd else e)
                    regs[a] = _obj_vec(out)
                else:
                    regs[a] = arr[int(idx) % len(arr)]
            elif op == 32 or op == 34:  # STIDX / STIDXG
                arr = regs[a] if op == 32 else glist[a]
                if type(arr) is not list:
                    sync()
                    return self._spill(pc - 1)
                idx = regs[b]
                if type(idx) is nd:
                    val = regs[c]
                    ln = len(arr)
                    vvec = type(val) is nd
                    for pos in range(n):
                        i = int(idx[pos]) % ln
                        cur = arr[i]
                        cur = cur.copy() if type(cur) is nd else _broadcast(cur, n)
                        cur[pos] = val[pos] if vvec else val
                        arr[i] = cur
                else:
                    arr[int(idx) % len(arr)] = regs[c]
            elif 19 <= op <= 24 or op == 17 or op == 18:  # JXX_F / JF / JT
                if op == 17 or op == 18:
                    x = regs[a]
                    target = b
                    if type(x) is not nd:
                        if (not x) if op == 17 else x:
                            pc = target
                        continue
                    # ok = lanes that fall through (JF falls through on truthy)
                    ok = self._truthy(x, None)
                    if op == 18:
                        ok = ~ok
                else:
                    x = regs[a]
                    y = regs[b]
                    target = c
                    if type(x) is not nd and type(y) is not nd:
                        if not self._cmp_scalar(op, x, y):
                            pc = target
                        continue
                    ok = self._cmp_vec(op, x, y, None)
                if ok.all():
                    continue
                if not ok.any():
                    pc = target
                    continue
                sync()
                self._diverge(pc - 1, target, ok)
                return
            elif op == 16:  # JUMP
                pc = a
            elif op == 40:  # CU
                v = regs[a] if a >= 0 else None
                if type(v) is nd:
                    pend_v = self.pend_v
                    tot_v = self.tot_v
                    pend_frac = self.pend_frac
                    tot_frac = self.tot_frac
                    for pos in range(n):
                        units = max(0.0, float(v[pos]))
                        doubled = units + units
                        if doubled < 1e15 and doubled == int(doubled):
                            k = int(doubled)
                            pend_v[pos] += k
                            tot_v[pos] += k
                        else:
                            pend_frac[pos] += units
                            tot_frac[pos] += units
                else:
                    units = max(0.0, float(v)) if a >= 0 else 0.0
                    doubled = units + units
                    if doubled < 1e15 and doubled == int(doubled):
                        k = int(doubled)
                        pend_u += k
                        tot_u += k
                    else:
                        self.pend_frac += units
                        self.tot_frac += units
            elif op == 3:  # DIV
                left = regs[b]
                right = regs[c]
                if type(left) is nd or type(right) is nd:
                    regs[a] = self._div_vec(left, right, None)
                elif right == 0:
                    regs[a] = 0
                elif type(left) is int and type(right) is int:
                    regs[a] = (
                        left // right
                        if (left >= 0) == (right >= 0)
                        else -((-left) // right)
                    )
                else:
                    regs[a] = left / right
            elif op == 4:  # MOD
                left = regs[b]
                right = regs[c]
                if type(left) is nd or type(right) is nd:
                    regs[a] = self._mod_vec(left, right, None)
                else:
                    regs[a] = left % right if right != 0 else 0
            elif 5 <= op <= 12:  # LT..NE / ANDL / ORL
                x = regs[b]
                y = regs[c]
                if type(x) is nd or type(y) is nd:
                    regs[a] = self._logic_vec(op, x, y, None)
                else:
                    regs[a] = 1 if self._cmp_scalar(op, x, y) else 0
            elif op == 13:  # NEG
                regs[a] = -regs[b]
            elif op == 14:  # NOTL
                x = regs[b]
                if type(x) is nd:
                    regs[a] = _obj_vec([0 if e else 1 for e in x])
                else:
                    regs[a] = 0 if x else 1
            elif op == 26:  # LOADG
                regs[a] = glist[b]
            elif op == 27:  # STOREG
                glist[a] = regs[b]
            elif op == 28:  # CHKDEF
                v = regs[a]
                if type(v) is nd:
                    if any(e is undef for e in v):
                        sync()
                        return self._spill(pc - 1)
                elif v is undef:
                    sync()
                    return self._spill(pc - 1)
            elif op == 29:  # LOADX
                value = regs[b]
                if type(value) is nd:
                    if any(e is undef for e in value):
                        g = glist[c]
                        gvec = type(g) is nd
                        regs[a] = _obj_vec([
                            (g[pos] if gvec else g) if value[pos] is undef
                            else value[pos]
                            for pos in range(n)
                        ])
                    else:
                        regs[a] = value
                else:
                    regs[a] = glist[c] if value is undef else value
            elif op == 30:  # STOREX
                v = regs[a]
                if type(v) is nd:
                    um = np.fromiter((e is undef for e in v), bool, n)
                    if um.all():
                        glist[b] = regs[c]
                    elif not um.any():
                        regs[a] = regs[c]
                    else:
                        glist[b] = self._merge_value(glist[b], regs[c], um)
                        regs[a] = self._merge_value(v, regs[c], ~um)
                elif v is undef:
                    glist[b] = regs[c]
                else:
                    regs[a] = regs[c]
            elif op == 35:  # NEWARR
                regs[a] = [c] * b
            elif op == 48:  # MATHOP
                pend_u += 4
                tot_u += 4
                args = [regs[i] for i in c]
                if any(type(x) is nd for x in args):
                    regs[a] = self._math_vec(b, args, None)
                else:
                    try:
                        regs[a] = b(*args)
                    except (ValueError, OverflowError):
                        regs[a] = 0.0
            elif op == 36:  # CALL
                callee = funcs[b]
                nregs = list(callee.proto)
                n_args = len(c)
                for i, slot in enumerate(callee.param_slots):
                    nregs[slot] = regs[c[i]] if i < n_args else 0
                stack.append((code, regs, pc, a, fc, trace))
                fc = callee
                code = callee.code
                regs = nregs
                pc = 0
                trace = runner.hooks.wants_function_events
                if trace:
                    now = clocks.now
                    name = fc.name
                    for pos in range(n):
                        emit(pos, "on_func_enter",
                             (interps[pos].rank, name, float(now[pos])))
            elif op == 38 or op == 39:  # RET / RETK
                value = regs[a] if op == 38 else a
                if trace:
                    now = clocks.now
                    name = fc.name
                    for pos in range(n):
                        emit(pos, "on_func_exit",
                             (interps[pos].rank, name, float(now[pos])))
                if not stack:
                    sync()
                    return self._finish()
                code, regs, pc, dst, fc, trace = stack.pop()
                regs[dst] = value
            elif op == 43:  # RANKOP
                self.pend_frac += 0.1
                self.tot_frac += 0.1
                regs[a] = self.ranks_vec
            elif op == 44:  # SIZEOP
                self.pend_frac += 0.1
                self.tot_frac += 0.1
                regs[a] = interps[0].n_ranks
            elif op == 45:  # WTIME
                self.pend_u = pend_u
                self.tot_u = tot_u
                self._flush_all()
                pend_u = 0
                regs[a] = _obj_vec([float(t) for t in clocks.now])
            elif op == 46 or op == 47:  # COLL / P2P
                sync()
                return self._mpi_full(op, a, b, c)
            elif op == 41 or op == 42:  # TICKOP / TOCKOP
                sid = regs[a]
                if type(sid) is nd:
                    sync()
                    return self._spill(pc - 1)
                ctl = self.control
                if ctl is None:
                    self.pend_u = pend_u
                    self.tot_u = tot_u
                    if op == 41:
                        self._tick_full(int(sid))
                    elif not self._tock_full(int(sid)):
                        sync()
                        return self._spill(pc - 1)
                    pend_u = self.pend_u
                    tot_u = self.tot_u
                else:
                    # Governor consult. ``peek``/``peek_skip`` are free of
                    # side effects: on a non-uniform answer the batch drains
                    # BEFORE any lane's decision is consumed, and the scalar
                    # re-execution of this op consults per lane —
                    # exactly-once accounting either way.
                    sidn = int(sid)
                    if op == 41:
                        keeps = [ctl.peek(i.rank, sidn) for i in interps]
                        if any(keeps) != all(keeps):
                            self.runner.note_governor_drain()
                            sync()
                            return self._spill(pc - 1)
                        self.pend_u = pend_u
                        self.tot_u = tot_u
                        for i in interps:
                            ctl.decide(i.rank, sidn)
                        if keeps[0]:
                            self._tick_full(sidn)
                        else:
                            # uniform skip: table check only, no flush —
                            # mirrors the scalar skip path exactly
                            self._charge_uniform(ctl.check_cost)
                        pend_u = self.pend_u
                        tot_u = self.tot_u
                    else:
                        skips = [ctl.peek_skip(i.rank, sidn) for i in interps]
                        if any(skips) != all(skips):
                            self.runner.note_governor_drain()
                            sync()
                            return self._spill(pc - 1)
                        self.pend_u = pend_u
                        self.tot_u = tot_u
                        if skips[0]:
                            for i in interps:
                                ctl.pop_skip(i.rank, sidn)
                            self._charge_uniform(ctl.check_cost)
                        elif not self._tock_full(sidn):
                            sync()
                            return self._spill(pc - 1)
                        pend_u = self.pend_u
                        tot_u = self.tot_u
            elif op == 49:  # IOOP
                self.pend_u = pend_u
                self.tot_u = tot_u
                self._io_full(b, regs[c] if c >= 0 else None)
                pend_u = 0
                regs[a] = 0
            elif op == 50:  # RANDOP
                pend_u += 1
                tot_u += 1
                regs[a] = _merge_lanes(
                    [int(i._rng.integers(0, 2**31 - 1)) for i in interps], n
                )
            elif op == 52:  # CLOCKOP
                self.pend_u = pend_u
                self.tot_u = tot_u
                self._flush_all()
                pend_u = 0
                regs[a] = _obj_vec([int(t) for t in clocks.now])
            elif op == 53:  # HOSTOP
                pend_u += 1
                tot_u += 1
                regs[a] = self.node_val
            elif op == 55:  # RESFP
                slot, gidx = b
                self.regs = regs
                regs[a] = self._resfp(slot, gidx, None)
            elif op == 37:  # CALLIND
                target = regs[b]
                if type(target) is nd:
                    first = target[0]
                    if not all(t == first for t in target):
                        sync()
                        return self._spill(pc - 1)
                    target = first
                meta, arg_regs = c
                if target >= 0:
                    callee = funcs[target]
                    nregs = list(callee.proto)
                    n_args = len(arg_regs)
                    for i, slot in enumerate(callee.param_slots):
                        nregs[slot] = regs[arg_regs[i]] if i < n_args else 0
                    stack.append((code, regs, pc, a, fc, trace))
                    fc = callee
                    code = callee.code
                    regs = nregs
                    pc = 0
                    trace = runner.hooks.wants_function_events
                    if trace:
                        now = clocks.now
                        name = fc.name
                        for pos in range(n):
                            emit(pos, "on_func_enter",
                                 (interps[pos].rank, name, float(now[pos])))
                else:
                    self.pend_u = pend_u
                    self.tot_u = tot_u
                    sync()
                    if not self._extern_full(a, meta,
                                             [regs[i] for i in arg_regs]):
                        return
                    pend_u = self.pend_u
                    tot_u = self.tot_u
            elif op == 54:  # EXTCALL
                self.pend_u = pend_u
                self.tot_u = tot_u
                sync()
                if not self._extern_full(a, b, [regs[i] for i in c]):
                    return
                pend_u = self.pend_u
                tot_u = self.tot_u
            else:  # pragma: no cover - compiler never emits unknown ops
                raise InterpError(f"bad opcode {op}")

    # -- scalar-op helpers ---------------------------------------------------

    @staticmethod
    def _cmp_scalar(op: int, x, y) -> bool:
        if op == 5 or op == 19:
            return x < y
        if op == 6 or op == 20:
            return x <= y
        if op == 7 or op == 21:
            return x > y
        if op == 8 or op == 22:
            return x >= y
        if op == 9 or op == 23:
            return x == y
        if op == 10 or op == 24:
            return x != y
        if op == 11:
            return bool(x and y)
        return bool(x or y)  # ORL

    def _compact(self, v, M):
        if type(v) is _ND:
            return v[M] if M is not None else v
        return v

    def _truthy(self, x, M) -> np.ndarray:
        xa = self._compact(x, M)
        if type(xa) is _ND:
            return np.fromiter((bool(e) for e in xa), bool, len(xa))
        size = int(M.sum()) if M is not None else self.n
        return np.full(size, bool(xa))

    def _cmp_vec(self, op: int, x, y, M) -> np.ndarray:
        """Comparison outcome (True = fall through) over active lanes."""
        xa = self._compact(x, M)
        ya = self._compact(y, M)
        if op == 19:
            r = xa < ya
        elif op == 20:
            r = xa <= ya
        elif op == 21:
            r = xa > ya
        elif op == 22:
            r = xa >= ya
        elif op == 23:
            r = xa == ya
        else:
            r = xa != ya
        if type(r) is _ND:
            return r.astype(bool)
        size = int(M.sum()) if M is not None else self.n
        return np.full(size, bool(r))

    def _pairs(self, x, y, M):
        xa = self._compact(x, M)
        ya = self._compact(y, M)
        size = len(xa) if type(xa) is _ND else (
            len(ya) if type(ya) is _ND else
            (int(M.sum()) if M is not None else self.n)
        )
        xs = xa if type(xa) is _ND else [xa] * size
        ys = ya if type(ya) is _ND else [ya] * size
        return xs, ys

    def _div_vec(self, x, y, M) -> np.ndarray:
        out = []
        for left, right in zip(*self._pairs(x, y, M)):
            if right == 0:
                out.append(0)
            elif type(left) is int and type(right) is int:
                out.append(
                    left // right
                    if (left >= 0) == (right >= 0)
                    else -((-left) // right)
                )
            else:
                out.append(left / right)
        return _obj_vec(out)

    def _mod_vec(self, x, y, M) -> np.ndarray:
        return _obj_vec([
            left % right if right != 0 else 0
            for left, right in zip(*self._pairs(x, y, M))
        ])

    def _logic_vec(self, op: int, x, y, M) -> np.ndarray:
        cmp = self._cmp_scalar
        return _obj_vec([
            1 if cmp(op, left, right) else 0
            for left, right in zip(*self._pairs(x, y, M))
        ])

    def _math_vec(self, fn, args, M) -> np.ndarray:
        size = None
        cols = []
        for v in args:
            va = self._compact(v, M)
            cols.append(va)
            if type(va) is _ND:
                size = len(va)
        if size is None:  # pragma: no cover - callers check for a vector
            size = int(M.sum()) if M is not None else self.n
        out = []
        for i in range(size):
            row = [v[i] if type(v) is _ND else v for v in cols]
            try:
                out.append(fn(*row))
            except (ValueError, OverflowError):
                out.append(0.0)
        return _obj_vec(out)

    def _resfp(self, slot: int, gidx: int, M):
        n = self.n
        glist = self.glist
        regs = self.regs
        undef = UNDEF

        def resolve(pos):
            value = None
            if slot >= 0:
                value = _lane_get(regs[slot], pos)
                if value is undef:
                    value = _lane_get(glist[gidx], pos) if gidx >= 0 else None
            elif gidx >= 0:
                value = _lane_get(glist[gidx], pos)
            return self.func_index.get(value, -1) if type(value) is str else -1

        if M is None:
            varying = (slot >= 0 and type(regs[slot]) is _ND) or (
                gidx >= 0 and type(glist[gidx]) is _ND
            )
            if not varying:
                return resolve(0)
            return _merge_lanes([resolve(pos) for pos in range(n)], n)
        return _obj_vec([resolve(int(p)) for p in np.nonzero(M)[0]])

    # -- observation ops (full width only) -----------------------------------

    def _tick_full(self, sid: int) -> None:
        self._charge_uniform(self.machine.probe_cost)
        self._flush_all()
        self.open_ticks[sid] = (
            self.clocks.now.copy(),
            self.tot_u + self.tot_v.copy(),
            self.tot_frac.copy(),
        )

    def _tock_full(self, sid: int) -> bool:
        """Returns False when there is no open tick (spill -> scalar raise)."""
        if sid not in self.open_ticks:
            return False  # scalar re-execution raises with rank attribution
        self._flush_all()
        t_start, half_at, frac_at = self.open_ticks.pop(sid)
        self._charge_uniform(self.machine.probe_cost)
        half_now = self.tot_u + self.tot_v
        now = self.clocks.now
        runner = self.runner
        emit = runner.emit
        for pos, interp in enumerate(self.interps):
            true_work = float(
                (half_now[pos] - half_at[pos]) * 0.5
                + (self.tot_frac[pos] - frac_at[pos])
            )
            sample = interp.pmu.read(true_work, float(now[pos]))
            self.counts[pos] += 1
            emit(pos, "on_sensor_record",
                 (interp.rank, sid, float(t_start[pos]), float(now[pos]), sample))
        return True

    def _io_full(self, opname: str, size_val) -> None:
        from repro.sim.faults import io_factor_at

        self._flush_all()
        n = self.n
        machine = self.machine
        faults = self.faults
        clocks = self.clocks
        t0 = clocks.now.copy()
        vvec = type(size_val) is _ND
        emit = self.runner.emit
        for pos, interp in enumerate(self.interps):
            if size_val is None:
                size = 1.0
            else:
                size = float(size_val[pos]) if vvec else float(size_val)
            cost = machine.io_alpha + machine.io_beta * size
            cost /= max(io_factor_at(faults, interp.clock.node.node_id,
                                     float(t0[pos])), 1e-6)
            clocks.now[pos] = t0[pos] + max(0.0, cost)
            emit(pos, "on_io",
                 (interp.rank, opname, float(t0[pos]), float(clocks.now[pos]), size))

    def _extern_full(self, dst: int, meta, args) -> bool:
        """Extern-model call at full width; False when spilled."""
        name, model = meta
        if model is None:
            # The scalar tier raises a per-rank InterpError here — drain so
            # the error surfaces with the right rank attribution.
            self._spill(self.pc - 1)
            return False
        n = self.n
        varying = any(type(x) is _ND for x in args)

        def units_of(pos):
            units = 1.0
            for idx in model.workload_args:
                if idx < len(args):
                    units *= max(0.0, float(_lane_get(args[idx], pos)))
            return units

        if model.category == "net":
            self._flush_all()
            clocks = self.clocks
            network = self.network
            t0 = clocks.now.copy()
            emit = self.runner.emit
            for pos, interp in enumerate(self.interps):
                units = units_of(pos)
                cost = model.base_cost + model.unit_cost * (
                    units if model.workload_args else 0.0
                )
                clocks.now[pos] = t0[pos] + max(
                    0.0, cost * network.stretch_at(float(t0[pos]))
                )
                emit(pos, "on_mpi_end",
                     (interp.rank, name, float(t0[pos]),
                      float(clocks.now[pos]), units))
        elif model.category == "io":
            from repro.sim.faults import io_factor_at

            self._flush_all()
            machine = self.machine
            clocks = self.clocks
            t0 = clocks.now.copy()
            emit = self.runner.emit
            for pos, interp in enumerate(self.interps):
                units = units_of(pos)
                cost = machine.io_alpha + machine.io_beta * units
                cost /= max(io_factor_at(self.faults,
                                         interp.clock.node.node_id,
                                         float(t0[pos])), 1e-6)
                clocks.now[pos] = t0[pos] + max(0.0, cost)
                emit(pos, "on_io",
                     (interp.rank, name, float(t0[pos]),
                      float(clocks.now[pos]), units))
        elif not varying:
            units = units_of(0)
            cost = model.base_cost + model.unit_cost * (
                units if model.workload_args else 0.0
            )
            self._charge_uniform(cost)
        else:
            for pos in range(n):
                units = units_of(pos)
                cost = model.base_cost + model.unit_cost * (
                    units if model.workload_args else 0.0
                )
                self._charge_lane(pos, cost)
        self.regs[dst] = 0
        return True

    # -- MPI (full width only) ----------------------------------------------

    def _mpi_full(self, op: int, a: int, b, c) -> None:
        self._flush_all()
        n = self.n
        clocks = self.clocks
        engine_op, spelled = b
        regs = self.regs
        nd = _ND
        if op == 46:  # COLL
            size_val = regs[c] if c >= 0 else None
            peers = None
        else:  # P2P
            peer_reg, size_reg = c
            size_val = regs[size_reg] if size_reg >= 0 else None
            if peer_reg >= 0:
                pv = regs[peer_reg]
                if type(pv) is nd:
                    peers = [int(pv[pos]) % self.nmod for pos in range(n)]
                else:
                    peers = [int(pv) % self.nmod] * n
            else:
                peers = [0] * n
        if size_val is None:
            sizes = [0.0] * n
        elif type(size_val) is nd:
            sizes = [float(size_val[pos]) for pos in range(n)]
        else:
            sizes = [float(size_val)] * n
        t0 = clocks.now.copy()
        runner = self.runner
        emit = runner.emit
        for pos, interp in enumerate(self.interps):
            emit(pos, "on_mpi_begin", (interp.rank, spelled, float(t0[pos])))
        self.block = {
            "dst": a,
            "spelled": spelled,
            "t0": t0,
            "sizes": sizes,
            "delivered": np.zeros(n, dtype=bool),
            "n_delivered": 0,
        }
        self.state = "blocked"
        for pos, interp in enumerate(self.interps):
            runner.queue[pos] = MpiRequest(
                rank=interp.rank,
                op=engine_op,
                size=sizes[pos],
                peer=(peers[pos] if peers is not None else -1),
                arrive=float(t0[pos]),
            )

    def deliver(self, pos: int, completion: float) -> None:
        """Eager completion delivery from the engine (batch blocked)."""
        block = self.block
        clocks = self.clocks
        clocks.wait_until_pos(pos, completion)
        interp = self.interps[pos]
        self.runner.emit(
            pos, "on_mpi_end",
            (interp.rank, block["spelled"], float(block["t0"][pos]),
             float(clocks.now[pos]), block["sizes"][pos]),
        )
        block["delivered"][pos] = True
        block["n_delivered"] += 1
        if block["n_delivered"] == self.n:
            self.regs[block["dst"]] = 0
            self.block = None
            self.state = "running"

    # -- divergence ----------------------------------------------------------

    def _diverge(self, branch_pc: int, target: int, ok: np.ndarray) -> bool:
        """Open (or narrow) a mask frame at a varying conditional.

        ``ok`` is the fall-through mask over all lanes (full mode).
        Returns False when the op had no reconvergence metadata (spilled).
        """
        cf = self.fc.cf.get(branch_pc)
        if cf is None:
            return self._spill_false(branch_pc)
        kind, merge, head = cf
        n = self.n
        entry = np.ones(n, dtype=bool)
        self._note_diverge(entry, ok, target_side_jump=True)
        if kind == "if":
            frame = _MaskFrame("if", self.code, self.fc, len(self.stack),
                               branch_pc, merge, -1, entry,
                               entry & ~ok, target)
        else:
            frame = _MaskFrame("loop", self.code, self.fc, len(self.stack),
                               branch_pc, merge, head, entry, None, -1)
        self.frames.append(frame)
        self.M = ok.copy()
        self.pc = branch_pc + 1
        return True

    def _note_diverge(self, active: np.ndarray, ok: np.ndarray, *,
                      target_side_jump: bool) -> None:
        runner = self.runner
        stay = int(ok.sum())
        leave = int(active.sum()) - stay
        # Minority side counts as "diverged"; ties go to the jump-taken side.
        if stay < leave:
            minority = active & ok
        else:
            minority = active & ~ok
        runner.note_diverge(np.nonzero(minority)[0])

    def _spill_false(self, at_pc: int) -> bool:
        self._spill(at_pc)
        return False

    # -- the masked interpreter loop -----------------------------------------

    def _run_masked(self) -> None:  # noqa: C901 - the dispatch ladder
        runner = self.runner
        interps = self.interps
        clocks = self.clocks
        n = self.n
        funcs = self.funcs
        undef = UNDEF
        nd = _ND
        emit = runner.emit
        glist = self.glist
        fc = self.fc
        code = self.code
        regs = self.regs
        pc = self.pc
        stack = self.stack
        trace = self.trace
        frames = self.frames
        M = self.M

        def sync():
            self.fc = fc
            self.code = code
            self.regs = regs
            self.pc = pc
            self.trace = trace
            self.M = M

        while True:
            # Reconvergence check: restore parked lanes at merge points.
            while frames:
                f = frames[-1]
                if f.code is not code or pc != f.merge or f.depth != len(stack):
                    break
                if f.kind == "if" and f.pending is not None:
                    pm = f.pending
                    f.pending = None
                    if pm.any():
                        M = pm
                        pc = f.ppc
                        # An if with no else has ppc == merge: the loop
                        # re-check pops the frame immediately in that case.
                        continue
                M = f.entry
                frames.pop()
            if not frames:
                self.M = None
                sync()
                self.M = None
                return
            self.regs = regs  # keep self fresh for helpers below

            op, a, b, c = code[pc]
            pc += 1
            if op == 15:  # CHARGE
                self.pend_v[M] += a
                self.tot_v[M] += a
            elif op == 25:  # MOVE
                self._mput(a, regs[b], M)
            elif op == 0 or op == 1 or op == 2:  # ADD / SUB / MUL
                xa = self._compact(regs[b], M)
                ya = self._compact(regs[c], M)
                if op == 0:
                    res = xa + ya
                elif op == 1:
                    res = xa - ya
                else:
                    res = xa * ya
                self._mputc(a, res, M)
                regs = self.regs
            elif op == 31 or op == 33:  # INDEX / INDEXG
                arr = regs[b] if op == 31 else glist[b]
                if type(arr) is not list:
                    sync()
                    return self._spill(pc - 1)
                idx = regs[c]
                ln = len(arr)
                if type(idx) is nd:
                    out = []
                    for pos in np.nonzero(M)[0]:
                        e = arr[int(idx[pos]) % ln]
                        out.append(e[pos] if type(e) is nd else e)
                    self._mputc(a, _obj_vec(out), M)
                else:
                    e = arr[int(idx) % ln]
                    if type(e) is nd:
                        self._mputc(a, e[M], M)
                    else:
                        self._mputc(a, e, M)
                regs = self.regs
            elif op == 32 or op == 34:  # STIDX / STIDXG
                arr = regs[a] if op == 32 else glist[a]
                if type(arr) is not list:
                    sync()
                    return self._spill(pc - 1)
                idx = regs[b]
                val = regs[c]
                ln = len(arr)
                vvec = type(val) is nd
                if type(idx) is nd:
                    for pos in np.nonzero(M)[0]:
                        i = int(idx[pos]) % ln
                        cur = arr[i]
                        cur = cur.copy() if type(cur) is nd else _broadcast(cur, n)
                        cur[pos] = val[pos] if vvec else val
                        arr[i] = cur
                else:
                    i = int(idx) % ln
                    arr[i] = self._merge_value(arr[i], val, M)
            elif 19 <= op <= 24 or op == 17 or op == 18:  # branches
                if op == 17 or op == 18:
                    x = regs[a]
                    target = b
                    ok = self._truthy(x, M)
                    if op == 18:
                        ok = ~ok
                else:
                    target = c
                    ok = self._cmp_vec(op, regs[a], regs[b], M)
                if ok.all():
                    continue
                if not ok.any():
                    pc = target
                    continue
                okfull = np.zeros(n, dtype=bool)
                okfull[M] = ok
                f = frames[-1]
                if (f.kind == "loop" and f.start == pc - 1
                        and f.code is code and f.depth == len(stack)):
                    # Repeated loop test: exiting lanes park at the merge.
                    self._note_diverge(M, okfull & M, target_side_jump=True)
                    M = okfull
                    continue
                cf = fc.cf.get(pc - 1)
                if cf is None:
                    sync()
                    return self._spill(pc - 1)
                kind, merge, head = cf
                self._note_diverge(M, okfull & M, target_side_jump=True)
                if kind == "if":
                    frames.append(_MaskFrame(
                        "if", code, fc, len(stack), pc - 1, merge, -1,
                        M.copy(), M & ~okfull, target))
                else:
                    frames.append(_MaskFrame(
                        "loop", code, fc, len(stack), pc - 1, merge, head,
                        M.copy(), None, -1))
                M = okfull
            elif op == 16:  # JUMP
                f = frames[-1]
                if f.code is not code or f.depth != len(stack):
                    # Inside a function called under the mask: unrestricted.
                    pc = a
                elif a == f.merge:
                    pc = a
                elif f.kind == "loop" and f.head <= a <= f.merge:
                    pc = a
                else:
                    sync()
                    return self._spill(pc - 1)
            elif op == 40:  # CU
                v = regs[a] if a >= 0 else None
                if type(v) is nd:
                    for pos in np.nonzero(M)[0]:
                        self._charge_lane(int(pos), max(0.0, float(v[pos])))
                else:
                    units = max(0.0, float(v)) if a >= 0 else 0.0
                    doubled = units + units
                    if doubled < 1e15 and doubled == int(doubled):
                        k = int(doubled)
                        self.pend_v[M] += k
                        self.tot_v[M] += k
                    else:
                        self.pend_frac[M] += units
                        self.tot_frac[M] += units
            elif op == 3:  # DIV
                self._mputc(a, self._div_vec(regs[b], regs[c], M), M)
                regs = self.regs
            elif op == 4:  # MOD
                self._mputc(a, self._mod_vec(regs[b], regs[c], M), M)
                regs = self.regs
            elif 5 <= op <= 12:  # LT..NE / ANDL / ORL
                x = regs[b]
                y = regs[c]
                if type(x) is nd or type(y) is nd:
                    res = self._logic_vec(op, x, y, M)
                else:
                    res = 1 if self._cmp_scalar(op, x, y) else 0
                self._mputc(a, res, M)
                regs = self.regs
            elif op == 13:  # NEG
                self._mputc(a, -self._compact(regs[b], M), M)
                regs = self.regs
            elif op == 14:  # NOTL
                xa = self._compact(regs[b], M)
                if type(xa) is nd:
                    res = _obj_vec([0 if e else 1 for e in xa])
                else:
                    res = 0 if xa else 1
                self._mputc(a, res, M)
                regs = self.regs
            elif op == 26:  # LOADG
                self._mput(a, glist[b], M)
                regs = self.regs
            elif op == 27:  # STOREG
                glist[a] = self._merge_value(glist[a], regs[b], M)
            elif op == 28:  # CHKDEF
                v = regs[a]
                if type(v) is nd:
                    if any(v[pos] is undef for pos in np.nonzero(M)[0]):
                        sync()
                        return self._spill(pc - 1)
                elif v is undef:
                    sync()
                    return self._spill(pc - 1)
            elif op == 29:  # LOADX
                value = regs[b]
                if type(value) is nd:
                    g = glist[c]
                    gvec = type(g) is nd
                    out = []
                    for pos in np.nonzero(M)[0]:
                        e = value[pos]
                        if e is undef:
                            e = g[pos] if gvec else g
                        out.append(e)
                    self._mputc(a, _obj_vec(out), M)
                elif value is undef:
                    self._mput(a, glist[c], M)
                else:
                    self._mput(a, value, M)
                regs = self.regs
            elif op == 30:  # STOREX
                v = regs[a]
                if type(v) is nd:
                    um = np.zeros(n, dtype=bool)
                    for pos in np.nonzero(M)[0]:
                        if v[pos] is undef:
                            um[pos] = True
                    mg = um
                    mr = M & ~um
                    if mg.any():
                        glist[b] = self._merge_value(glist[b], regs[c], mg)
                    if mr.any():
                        self._mput(a, regs[c], mr)
                elif v is undef:
                    glist[b] = self._merge_value(glist[b], regs[c], M)
                else:
                    self._mput(a, regs[c], M)
                regs = self.regs
            elif op == 35:  # NEWARR
                self._mput(a, [c] * b, M)
                regs = self.regs
            elif op == 48:  # MATHOP
                self.pend_v[M] += 4
                self.tot_v[M] += 4
                args = [regs[i] for i in c]
                if any(type(x) is nd for x in args):
                    res = self._math_vec(b, args, M)
                else:
                    try:
                        res = b(*args)
                    except (ValueError, OverflowError):
                        res = 0.0
                self._mputc(a, res, M)
                regs = self.regs
            elif op == 36:  # CALL
                callee = funcs[b]
                nregs = list(callee.proto)
                n_args = len(c)
                for i, slot in enumerate(callee.param_slots):
                    nregs[slot] = regs[c[i]] if i < n_args else 0
                stack.append((code, regs, pc, a, fc, trace))
                fc = callee
                code = callee.code
                regs = nregs
                self.regs = regs
                pc = 0
                trace = runner.hooks.wants_function_events
                if trace:
                    now = clocks.now
                    name = fc.name
                    for pos in np.nonzero(M)[0]:
                        emit(int(pos), "on_func_enter",
                             (interps[pos].rank, name, float(now[pos])))
            elif op == 38 or op == 39:  # RET / RETK
                f = frames[-1]
                if (f.code is code and f.depth == len(stack)) or not stack:
                    # Divergent return: lanes would leave the function that
                    # owns the innermost mask frame.
                    sync()
                    return self._spill(pc - 1)
                value = regs[a] if op == 38 else a
                if trace:
                    now = clocks.now
                    name = fc.name
                    for pos in np.nonzero(M)[0]:
                        emit(int(pos), "on_func_exit",
                             (interps[pos].rank, name, float(now[pos])))
                code, regs, pc, dst, fc, trace = stack.pop()
                self.regs = regs
                self._mput(dst, value, M)
                regs = self.regs
            elif op == 43:  # RANKOP
                self.pend_frac[M] += 0.1
                self.tot_frac[M] += 0.1
                self._mput(a, self.ranks_vec, M)
                regs = self.regs
            elif op == 44:  # SIZEOP
                self.pend_frac[M] += 0.1
                self.tot_frac[M] += 0.1
                self._mput(a, interps[0].n_ranks, M)
                regs = self.regs
            elif op == 50:  # RANDOP
                self.pend_v[M] += 1
                self.tot_v[M] += 1
                draws = [
                    int(interps[pos]._rng.integers(0, 2**31 - 1))
                    for pos in np.nonzero(M)[0]
                ]
                self._mputc(a, _obj_vec(draws), M)
                regs = self.regs
            elif op == 53:  # HOSTOP
                self.pend_v[M] += 1
                self.tot_v[M] += 1
                self._mput(a, self.node_val, M)
                regs = self.regs
            elif op == 55:  # RESFP
                slot, gidx = b
                self._mputc(a, self._resfp(slot, gidx, M), M)
                regs = self.regs
            else:
                # Observation, MPI, IO, extern and indirect-call ops need the
                # full batch: drain every lane.
                sync()
                return self._spill(pc - 1)

    # -- spill / finish ------------------------------------------------------

    def _spill(self, cur_pc: int, blocked: dict | None = None) -> None:
        """Materialize every lane into a ScalarState and drain the batch."""
        n = self.n
        stack = self.stack
        depth = len(stack)
        park_pc = [cur_pc] * n
        park_depth = [depth] * n
        if self.M is not None:
            covered = self.M.copy()
            for f in reversed(self.frames):
                if f.kind == "if" and f.pending is not None:
                    newly = f.pending & ~covered
                    for pos in np.nonzero(newly)[0]:
                        park_pc[pos] = f.ppc
                        park_depth[pos] = f.depth
                    covered |= f.pending
                newly = f.entry & ~covered
                for pos in np.nonzero(newly)[0]:
                    park_pc[pos] = f.merge
                    park_depth[pos] = f.depth
                covered |= f.entry
        states = []
        for pos in range(n):
            d = park_depth[pos]
            if d == depth:
                lcode, lregs, lfc, ltrace = self.code, self.regs, self.fc, self.trace
            else:
                ent = stack[d]
                lcode, lregs, lfc, ltrace = ent[0], ent[1], ent[4], ent[5]
            st = ScalarState(
                glist=[_lane_get(v, pos) for v in self.glist],
                fc=lfc,
                code=lcode,
                regs=[_lane_get(v, pos) for v in lregs],
                pc=park_pc[pos],
                stack=[
                    (e[0], [_lane_get(v, pos) for v in e[1]],
                     e[2], e[3], e[4], e[5])
                    for e in stack[:d]
                ],
                trace=ltrace,
            )
            states.append(st)
        for pos, interp in enumerate(self.interps):
            interp._pending_half = self.pend_u + int(self.pend_v[pos])
            interp._pending_frac = float(self.pend_frac[pos])
            interp._total_half = self.tot_u + int(self.tot_v[pos])
            interp._total_frac = float(self.tot_frac[pos])
            interp.sensor_record_count = int(self.counts[pos])
            interp._open_ticks = {
                sid: (float(t[pos]), int(h[pos]), float(fr[pos]))
                for sid, (t, h, fr) in self.open_ticks.items()
            }
            self.clocks.export(pos)
        if blocked is not None:
            dst = blocked["dst"]
            for pos, st in enumerate(states):
                st.mpi = (dst, blocked["spelled"], float(blocked["t0"][pos]),
                          blocked["sizes"][pos])
                if blocked["delivered"][pos]:
                    st.regs[dst] = 0
        self.state = "spilled"
        self.runner.on_spill(states, blocked)

    def spill_blocked(self) -> None:
        """Drain a blocked batch (rendezvous stall: partial delivery)."""
        block = self.block
        self.block = None
        self._spill(self.pc, blocked=block)

    def _finish(self) -> None:
        """Program end at full width."""
        self._flush_all()
        runner = self.runner
        now = self.clocks.now
        for pos, interp in enumerate(self.interps):
            runner.emit(pos, "on_program_end", (interp.rank, float(now[pos])))
            interp.clock.now = float(now[pos])
            interp._pending_half = 0
            interp._pending_frac = 0.0
            interp._total_half = self.tot_u + int(self.tot_v[pos])
            interp._total_frac = float(self.tot_frac[pos])
            interp.sensor_record_count = int(self.counts[pos])
        self.state = "done"
        runner.on_done()
