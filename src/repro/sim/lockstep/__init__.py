"""Lockstep SIMD-over-ranks execution tier (``engine="lockstep"``).

One fused VM fetches each bytecode instruction once and applies it to all
ranks' register lanes at once; per-rank virtual clocks and noise draws are
vectorized along the rank axis.  Ranks whose control flow diverges are
masked, and drained onto per-rank :class:`~repro.sim.bytecode.vm.BytecodeInterp`
instances when they hit an operation that cannot run under a partial mask;
drained lanes re-fuse at the next full-width collective.  Bit-identical to
``engine="bytecode"`` by construction — see DESIGN.md §9.
"""

from repro.sim.lockstep.runner import LockstepRunner

__all__ = ["LockstepRunner"]
