"""Rank-axis vectorized virtual clocks for the lockstep tier.

:class:`VectorClocks` holds every fused lane's ``now`` in one float64 array
and advances all lanes through the same slice-stepping integration loop as
:meth:`repro.sim.clock.RankClock.advance_compute` — per lane, the sequence
of float operations is *identical* to the scalar loop (same multiplies in
the same order, same ``max(..., 1e-9)`` clamps, same slice/fault-edge
boundaries), so the resulting timestamps are bit-identical.  Noise draws
come from the same cached chunk arrays as the scalar path
(:meth:`NodeNoise.speed_multipliers`), grouped per node.
"""

from __future__ import annotations

import numpy as np

from repro.sim.faults import BadNode, CpuContention, SlowMemoryNode, fault_boundaries


class VectorClocks:
    """Virtual clocks of all fused lanes, advanced in lockstep."""

    def __init__(self, interps) -> None:
        # ``interps`` are the per-rank BytecodeInterp backing stores, in
        # batch (rank) order.  Their RankClock objects stay authoritative
        # while a lane is drained; absorb() / export() move a lane's time
        # across the fused/drained boundary.
        self.interps = interps
        first = interps[0]
        self.machine = first.machine
        self.faults = first.faults
        self.n = len(interps)
        self.now = np.array([i.clock.now for i in interps], dtype=np.float64)
        self.node_ids = np.array(
            [i.clock.node.node_id for i in interps], dtype=np.int64
        )
        self.cpu_speed = np.array(
            [i.clock.node.cpu_speed for i in interps], dtype=np.float64
        )
        self.mem_perf = np.array(
            [i.clock.node.mem_perf for i in interps], dtype=np.float64
        )
        self.frac = self.machine.mem_fraction
        self.slice_us = max(1.0, self.machine.noise.jitter_slice_us)
        self.edges = np.array(fault_boundaries(self.faults), dtype=np.float64)
        # Group lanes by node so one NodeNoise serves each node's draws.
        groups: list = []
        group_of = np.empty(self.n, dtype=np.int64)
        seen: dict[int, int] = {}
        for pos, interp in enumerate(interps):
            nid = interp.clock.node.node_id
            g = seen.get(nid)
            if g is None:
                g = seen[nid] = len(groups)
                groups.append(interp.clock.noise)
            group_of[pos] = g
        self._noise_groups = groups
        self._group_of = group_of
        self._noise_cfg = self.machine.noise
        # Stacked per-node chunk caches: chunk id -> (n_groups, chunk_len)
        # arrays, so one 2D fancy index serves every lane of a round.
        self._jitter_stacks: dict[int, np.ndarray] = {}
        self._spike_stacks: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # -- noise / fault factor gathers ---------------------------------------

    def _speed_multipliers(self, idx: np.ndarray, t: np.ndarray) -> np.ndarray:
        groups = self._noise_groups
        if len(groups) == 1:
            return groups[0].speed_multipliers(t)
        cfg = self._noise_cfg
        gi = self._group_of[idx]
        # Fast path: lockstep keeps lanes nearly synchronized, so one noise
        # chunk usually covers every lane across all nodes.  Gather from a
        # stacked (node-group, slice) table in one indexing op; element per
        # element this reads the same cached draws as the per-group path.
        if cfg.jitter_sigma > 0:
            k = (t / cfg.jitter_slice_us).astype(np.int64)
            c = int(k[0]) >> 9
            if (int(k.max()) >> 9) != c or (int(k.min()) >> 9) != c:
                return self._per_group_multipliers(gi, t)
            stack = self._jitter_stacks.get(c)
            if stack is None:
                stack = np.stack([g._jitter_chunk(c) for g in groups])
                self._jitter_stacks[c] = stack
            mult = stack[gi, k & 511]
        else:
            mult = np.ones(len(t))
        if cfg.spike_rate_per_ms > 0:
            ms = (t / 1000.0).astype(np.int64)
            c = int(ms[0]) // 256
            if int(ms.max()) // 256 != c or int(ms.min()) // 256 != c:
                return self._per_group_multipliers(gi, t)
            pf = self._spike_stacks.get(c)
            if pf is None:
                pf = (
                    np.stack([g._spike_chunk(c)[0] for g in groups]),
                    np.stack([g._spike_chunk(c)[1] for g in groups]),
                )
                self._spike_stacks[c] = pf
            lanes = ms - c * 256
            p = pf[0][gi, lanes]
            frac = pf[1][gi, lanes]
            start = ms * 1000.0 + frac * 1000.0
            active = (
                (p < cfg.spike_rate_per_ms)
                & (start <= t)
                & (t < start + cfg.spike_duration_us)
            )
            if active.any():
                mult[active] *= 0.25
        return mult

    def _per_group_multipliers(self, gi: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Chunk-boundary rounds: delegate to the per-node vectorized path."""
        out = np.empty(len(t))
        for g, noise in enumerate(self._noise_groups):
            m = gi == g
            if m.any():
                out[m] = noise.speed_multipliers(t[m])
        return out

    def _cpu_factors(self, nids: np.ndarray, t: np.ndarray) -> np.ndarray:
        # Mirrors faults.cpu_factor_at: one multiplicative pass per fault,
        # in fault-tuple order, so per-lane products match bit for bit.
        f = np.ones(len(t))
        for fault in self.faults:
            if isinstance(fault, BadNode):
                m = (nids == fault.node_id) & (fault.t0 <= t) & (t < fault.t1)
                if m.any():
                    f[m] *= fault.cpu_factor
            elif isinstance(fault, CpuContention):
                m = np.isin(nids, fault.node_ids) & (fault.t0 <= t) & (t < fault.t1)
                if m.any():
                    f[m] *= fault.cpu_factor
        return f

    def _mem_factors(self, nids: np.ndarray, t: np.ndarray) -> np.ndarray:
        f = np.ones(len(t))
        for fault in self.faults:
            if isinstance(fault, (BadNode, SlowMemoryNode)):
                m = (nids == fault.node_id) & (fault.t0 <= t) & (t < fault.t1)
                if m.any():
                    f[m] *= fault.mem_factor
            elif isinstance(fault, CpuContention):
                m = np.isin(nids, fault.node_ids) & (fault.t0 <= t) & (t < fault.t1)
                if m.any():
                    f[m] *= fault.mem_factor
        return f

    def _interrupt_losses(self, start: np.ndarray, end: np.ndarray) -> np.ndarray:
        # interrupt_loss depends only on the (machine-wide) NoiseConfig, so
        # any group's NodeNoise serves every lane.
        return self._noise_groups[0].interrupt_losses(start, end)

    # -- the vectorized integration loop ------------------------------------

    def advance_compute(self, work: np.ndarray) -> None:
        """Advance each lane by ``work[lane]`` compute units (0 = no-op)."""
        idx = np.nonzero(work > 0)[0]
        if idx.size == 0:
            return
        start = self.now[idx].copy()
        t = self.now[idx].copy()
        remaining = work[idx].astype(np.float64, copy=True)
        nids = self.node_ids[idx]
        cpu_speed = self.cpu_speed[idx]
        mem_perf = self.mem_perf[idx]
        frac = self.frac
        slice_us = self.slice_us
        edges = self.edges
        n_edges = len(edges)
        have_faults = bool(self.faults)
        # Per round: every still-active lane takes exactly the step the
        # scalar loop would take, with identical float operations.
        live = np.arange(idx.size)
        for _ in range(10_000_000):
            ta = t[live]
            if have_faults:
                cpu = cpu_speed[live] * self._cpu_factors(nids[live], ta)
                cpu = cpu * self._speed_multipliers(idx[live], ta)
                mem = mem_perf[live] * self._mem_factors(nids[live], ta)
            else:
                cpu = cpu_speed[live] * self._speed_multipliers(idx[live], ta)
                mem = mem_perf[live]
            denom = (1.0 - frac) / np.maximum(cpu, 1e-9) + frac / np.maximum(
                cpu * mem, 1e-9
            )
            speed = 1.0 / denom
            boundary = ((ta / slice_us).astype(np.int64) + 1) * slice_us
            if n_edges:
                ei = np.searchsorted(edges, ta, side="right")
                has_edge = ei < n_edges
                if has_edge.any():
                    nxt = edges[np.minimum(ei, n_edges - 1)]
                    closer = has_edge & (nxt < boundary)
                    boundary[closer] = nxt[closer]
            dt_max = boundary - ta
            dt_needed = remaining[live] / np.maximum(speed, 1e-9)
            done = dt_needed <= dt_max
            if done.any():
                fin = live[done]
                t[fin] = ta[done] + dt_needed[done]
                remaining[fin] = 0.0
                live = live[~done]
                if live.size == 0:
                    break
                cont = ~done
                remaining[live] -= speed[cont] * dt_max[cont]
                t[live] = boundary[cont]
            else:
                remaining[live] -= speed * dt_max
                t[live] = boundary
        t += self._interrupt_losses(start, t)
        self.now[idx] = t

    # -- wall-time helpers ---------------------------------------------------

    def advance_wall(self, duration: np.ndarray | float) -> np.ndarray:
        """Advance all lanes by per-lane wall durations; returns start copy."""
        start = self.now.copy()
        self.now = start + np.maximum(0.0, duration)
        return start

    def wait_until_pos(self, pos: int, t: float) -> None:
        if t > self.now[pos]:
            self.now[pos] = t

    # -- fused/drained boundary ----------------------------------------------

    def export(self, pos: int) -> None:
        """Hand lane ``pos``'s time to its scalar RankClock (drain)."""
        self.interps[pos].clock.now = float(self.now[pos])

    def absorb(self, pos: int) -> None:
        """Take lane ``pos``'s time back from its scalar RankClock (refuse)."""
        self.now[pos] = self.interps[pos].clock.now
