"""Batch orchestration for the lockstep tier: fuse, drain, re-fuse.

The :class:`LockstepRunner` owns one :class:`~repro.sim.lockstep.vm.FusedVM`
(while all lanes are fused) plus the per-rank ``BytecodeInterp`` backing
stores that carry clocks, PMUs and RNG streams across the fused/drained
boundary.  The rendezvous engine never sees any of this: each rank hands it
a :class:`_LockstepLane` facade whose ``run()`` generator speaks the exact
scalar protocol (yield :class:`MpiRequest`, receive completion time), so
``engine="lockstep"`` plugs into :meth:`Simulator._run_loop` unchanged
except for one call: the engine forwards each resolved rendezvous group to
:meth:`on_group` *before* resuming its members, which is what lets a fused
batch absorb completions for lanes the engine has not polled yet and what
lets fully-drained batches re-fuse at a whole-batch collective.

Invariant: either every lane is fused in ``self.vm``, or ``self.vm`` is
``None`` and every unfinished lane runs drained on its own interp.  There
is no partial fusion — a spill drains the whole batch (see DESIGN.md §9).
"""

from __future__ import annotations

from repro.sim.hooks import NullHooks

from repro.sim.lockstep.clocks import VectorClocks
from repro.sim.lockstep.vm import FusedVM

#: Sentinel returned by :meth:`LockstepRunner.next_item` at end of program.
_DONE = object()

_FUSED = "fused"
_DRAINED = "drained"
_FINISHED = "finished"

#: Rendezvous ops that can never re-fuse a batch (pairwise, not whole-batch).
_P2P_OPS = frozenset(["send", "recv", "sendrecv"])


def _adapter(runner: "LockstepRunner", lane: int):
    """Generator speaking the scalar rank protocol for one lane."""
    completion = None
    while True:
        item = runner.next_item(lane, completion)
        if item is _DONE:
            return
        completion = yield item


class _LockstepLane:
    """Engine-facing stand-in for one rank's interpreter."""

    def __init__(self, runner: "LockstepRunner", lane: int) -> None:
        self._runner = runner
        self._interp = runner.interps[lane]
        self._lane = lane

    def run(self):
        return _adapter(self._runner, self._lane)

    @property
    def rank(self) -> int:
        return self._interp.rank

    @property
    def clock(self):
        return self._interp.clock

    @property
    def total_work(self) -> float:
        return self._interp.total_work

    @property
    def sensor_record_count(self) -> int:
        return self._interp.sensor_record_count


class LockstepRunner:
    """Drives one fused batch over per-rank interpreter backing stores."""

    def __init__(self, interps, hooks, obs) -> None:
        self.interps = interps
        self.hooks = hooks
        self.obs = obs
        self.n = len(interps)
        self.pos_of = {interp.rank: pos for pos, interp in enumerate(interps)}
        self.clocks = VectorClocks(interps)
        self.buffering = type(hooks) is not NullHooks
        self.bufs: list[list] = [[] for _ in range(self.n)]
        self.status = [_FUSED] * self.n
        self.queue = [None] * self.n          # MpiRequest awaiting pickup
        self.block_desc = [None] * self.n     # (op, peer) of last request
        self.states = [None] * self.n         # ScalarState while drained
        self.gens = [None] * self.n           # live drain generator
        self.await_mpi = [False] * self.n     # drained with undelivered MPI
        self.stats = {"fuse": 0, "diverge": 0, "drain": 0, "governor_drain": 0}
        self.diverged_ranks: set[int] = set()
        self._counters_flushed = False
        self.vm = FusedVM.initial(self)

    def lanes(self) -> list[_LockstepLane]:
        return [_LockstepLane(self, lane) for lane in range(self.n)]

    # -- hook buffering ------------------------------------------------------

    def emit(self, lane: int, name: str, args: tuple) -> None:
        """Buffer a hook event for ``lane`` (no-op under NullHooks).

        Buffered events are flushed when the engine next polls the lane, so
        the caller-visible hook order is exactly the scalar engine's
        per-rank-segment order even though fused execution interleaves all
        lanes instruction by instruction.
        """
        if self.buffering:
            self.bufs[lane].append((name, args))

    def _flush(self, lane: int) -> None:
        buf = self.bufs[lane]
        if buf:
            hooks = self.hooks
            for name, args in buf:
                getattr(hooks, name)(*args)
            buf.clear()

    # -- engine protocol -----------------------------------------------------

    def next_item(self, lane: int, completion):
        """Produce the next engine item (MpiRequest or _DONE) for a lane."""
        if self.status[lane] == _FUSED:
            vm = self.vm
            if vm.state == "running" and self.queue[lane] is None:
                vm.run()
            req = self.queue[lane]
            if req is not None:
                self.queue[lane] = None
                self.block_desc[lane] = (req.op, req.peer)
                self._flush(lane)
                return req
            if vm.state == "blocked":
                # This lane's completion was delivered and the engine has
                # resumed it, but sibling lanes still wait: the batch cannot
                # move in lockstep. Drain everyone (rendezvous stall).
                vm.spill_blocked()
            # "done" and "spilled" updated self.status via on_done/on_spill.
        if self.status[lane] == _FINISHED:
            self._flush(lane)
            return _DONE
        self._flush(lane)
        return self._advance_drained(lane, completion)

    def _advance_drained(self, lane: int, completion):
        gen = self.gens[lane]
        try:
            if gen is None:
                # First advance since the spill: any pending completion was
                # already applied (by FusedVM.deliver or on_group), so the
                # engine's completion value is stale here — ignore it.
                gen = self.gens[lane] = self.interps[lane].resume(self.states[lane])
                req = next(gen)
            elif completion is not None:
                req = gen.send(completion)
            else:  # pragma: no cover - engine always resumes with a value
                req = next(gen)
        except StopIteration:
            self.status[lane] = _FINISHED
            self.gens[lane] = None
            return _DONE
        self.block_desc[lane] = (req.op, req.peer)
        return req

    def on_group(self, group) -> None:
        """Absorb a resolved rendezvous group *before* the engine resumes it.

        ``group`` is the engine's list of ``(rank, completion)`` pairs.
        """
        vm = self.vm
        if vm is not None:
            for rank, completion in group:
                vm.deliver(self.pos_of[rank], completion)
            return
        for rank, completion in group:
            lane = self.pos_of[rank]
            if self.gens[lane] is None and self.await_mpi[lane]:
                # Lane was drained mid-block: its request is already posted,
                # so apply the post-MPI effects the scalar core would run on
                # resume. The hook is buffered to preserve segment order.
                st = self.states[lane]
                interp = self.interps[lane]
                dst, spelled, t0, size = st.mpi
                interp.clock.wait_until(completion)
                self.emit(lane, "on_mpi_end",
                          (interp.rank, spelled, t0, interp.clock.now, size))
                st.regs[dst] = 0
                st.mpi = None
                self.await_mpi[lane] = False
            # Lanes with a live generator get their completion through the
            # engine's normal gen.send on next poll.
        self._maybe_refuse(group)

    # -- spill / finish callbacks (from FusedVM) -----------------------------

    def on_spill(self, states, blocked) -> None:
        n = self.n
        self.stats["drain"] += n
        for lane in range(n):
            self.status[lane] = _DRAINED
            self.states[lane] = states[lane]
            self.gens[lane] = None
            self.await_mpi[lane] = (
                blocked is not None and not blocked["delivered"][lane]
            )
        self.vm = None
        tracer = self.obs.tracer
        if tracer.enabled:
            t = max(float(x) for x in self.clocks.now)
            tracer.emit("sim.lockstep.drain", t, t, lanes=n)

    def on_done(self) -> None:
        for lane in range(self.n):
            self.status[lane] = _FINISHED
        self.vm = None

    def flush_counters(self) -> None:
        """Report cumulative stats to obs.metrics (idempotent, end of run)."""
        if self._counters_flushed:
            return
        self._counters_flushed = True
        metrics = self.obs.metrics
        metrics.counter("sim.lockstep.fuse").inc(self.stats["fuse"])
        metrics.counter("sim.lockstep.diverge").inc(self.stats["diverge"])
        metrics.counter("sim.lockstep.drain").inc(self.stats["drain"])
        metrics.counter("sim.lockstep.diverged").inc(len(self.diverged_ranks))
        # Emitted only when a governor actually forced drains, so runs
        # without a governor keep their golden counter sets unchanged.
        if self.stats["governor_drain"]:
            metrics.counter("sim.lockstep.governor_drains").inc(
                self.stats["governor_drain"]
            )

    def note_governor_drain(self) -> None:
        """A probe's control state diverged across lanes: the whole batch
        drains before any lane's governor decision is consumed."""
        self.stats["governor_drain"] += 1
        tracer = self.obs.tracer
        if tracer.enabled:
            t = max(float(x) for x in self.clocks.now)
            tracer.emit("sim.lockstep.governor_drain", t, t, lanes=self.n)

    def note_diverge(self, positions) -> None:
        self.stats["diverge"] += 1
        for pos in positions:
            self.diverged_ranks.add(self.interps[int(pos)].rank)
        tracer = self.obs.tracer
        if tracer.enabled:
            t = max(float(x) for x in self.clocks.now)
            tracer.emit("sim.lockstep.diverge", t, t, lanes=len(positions))

    # -- refusion ------------------------------------------------------------

    def _maybe_refuse(self, group) -> None:
        if len(group) != self.n:
            return
        descs = self.block_desc
        op0, peer0 = descs[0]
        if op0 in _P2P_OPS or peer0 != -1:
            return
        if any(d != (op0, -1) for d in descs[1:]):
            return
        if any(self.status[lane] != _DRAINED for lane in range(self.n)):
            return
        states = self.states
        if not self._structurally_fusable(states):
            return
        # Apply post-MPI effects for lanes still inside a live generator
        # (gen-None lanes were handled in on_group above), then retire the
        # generators. Effects are applied only AFTER the structural check:
        # if the check failed, those lanes must keep their generators, and
        # resuming them would re-apply the effects.
        completions = {rank: completion for rank, completion in group}
        for lane in range(self.n):
            gen = self.gens[lane]
            if gen is None:
                continue
            st = states[lane]
            interp = self.interps[lane]
            dst, spelled, t0, size = st.mpi
            interp.clock.wait_until(completions[interp.rank])
            self.emit(lane, "on_mpi_end",
                      (interp.rank, spelled, t0, interp.clock.now, size))
            st.regs[dst] = 0
            st.mpi = None
            gen.close()
            self.gens[lane] = None
        self.vm = FusedVM.from_states(self, states)
        for lane in range(self.n):
            self.status[lane] = _FUSED
            self.states[lane] = None
            self.await_mpi[lane] = False
        self.stats["fuse"] += 1
        tracer = self.obs.tracer
        if tracer.enabled:
            t = max(float(x) for x in self.clocks.now)
            tracer.emit("sim.lockstep.fuse", t, t, lanes=self.n)

    def _structurally_fusable(self, states) -> bool:
        t = states[0]
        for st in states:
            if (st is None or st.finished or st.fc is not t.fc
                    or st.code is not t.code or st.pc != t.pc
                    or st.trace != t.trace
                    or len(st.stack) != len(t.stack)):
                return False
        for d, e0 in enumerate(t.stack):
            for st in states:
                e = st.stack[d]
                # (code, regs, ret_pc, dst, fc, trace) — everything but the
                # register values must match for lane-merging to be sound.
                if (e[0] is not e0[0] or e[2] != e0[2] or e[3] != e0[3]
                        or e[4] is not e0[4] or e[5] != e0[5]):
                    return False
        keys = set(self.interps[0]._open_ticks)
        for interp in self.interps:
            if set(interp._open_ticks) != keys:
                return False
        return True
