"""Micro workloads: FWQ-style kernels for calibration and the smoothing study.

``fwq_program`` is a pure fixed-work-quanta loop — the embedded equivalent
of the external FWQ benchmark the paper contrasts against (§1, approach 4),
and the workload behind the Fig. 12 smoothing demonstration (a ~10 µs
sensor executed back-to-back).
"""

from __future__ import annotations

from repro.workloads.base import Workload, register


def fwq_source(iterations: int = 20_000, quantum_units: float = 10.0) -> str:
    """A fixed-work-quanta kernel: one sensor of ~``quantum_units`` work.

    The quantum lives in its own function so the call site is a v-sensor
    of the repetition loop (straight-line arithmetic alone is not a
    snippet candidate).
    """
    return f"""
global int N = {iterations};
void quantum() {{
    compute_units({quantum_units});
}}
int main() {{
    int i;
    for (i = 0; i < N; i = i + 1) {{
        quantum();
    }}
    return 0;
}}
"""


def _source(scale: int) -> str:
    return fwq_source(iterations=2000 * scale, quantum_units=10.0)


FWQ = register(
    Workload(
        name="FWQ",
        source_fn=_source,
        default_scale=1,
        description="fixed-work-quanta microkernel (smoothing / calibration)",
    )
)
