"""AMG analogue: adaptive multigrid — workload changes at runtime.

The paper singles AMG out: its adaptive mesh refinement changes loop
bounds at runtime, so only a tiny fraction of execution is covered by
v-sensors (0.18% coverage in Table 1) and the sensors cluster in the setup
phase.  The analogue reproduces that: a fixed-work setup phase, then a
solve phase whose loop bounds derive from data-dependent level sizes
(array reads poison the dependency slice, so nothing in the solve phase is
a sensor).
"""

from __future__ import annotations

from repro.workloads.base import Workload, register


def _source(scale: int) -> str:
    niter = 8 * scale
    levels = 5
    return f"""
global int NITER = {niter};
global int LEVELS = {levels};
global int level_size[{levels}];

void setup_grid() {{
    int i;
    for (i = 0; i < 50; i = i + 1) compute_units(12);
    MPI_Allreduce(4);
}}

void refine() {{
    int l; int prev;
    level_size[0] = 64 + rand() % 64;
    for (l = 1; l < LEVELS; l = l + 1) {{
        prev = level_size[l - 1];
        level_size[l] = prev / 2 + rand() % 8;
    }}
}}

void smooth(int l) {{
    int i; int n;
    n = level_size[l];
    for (i = 0; i < n; i = i + 1) compute_units(4);
}}

void restrict_residual(int l) {{
    int i; int n;
    n = level_size[l];
    for (i = 0; i < n; i = i + 1) compute_units(3);
    MPI_Allreduce(n / 16 + 1);
}}

void vcycle() {{
    int l;
    for (l = 0; l < LEVELS - 1; l = l + 1) {{
        smooth(l);
        restrict_residual(l);
    }}
    for (l = LEVELS - 2; l >= 0; l = l - 1) {{
        smooth(l);
    }}
}}

int main() {{
    int it;
    setup_grid();
    for (it = 0; it < NITER; it = it + 1) {{
        refine();
        vcycle();
        MPI_Barrier();
    }}
    printf("done");
    return 0;
}}
"""


AMG = register(
    Workload(
        name="AMG",
        source_fn=_source,
        default_scale=1,
        description="algebraic multigrid: adaptive refinement defeats most sensors",
    )
)
