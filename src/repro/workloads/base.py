"""Workload plumbing: the descriptor and the registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sim.machine import MachineConfig


@dataclass(frozen=True, slots=True)
class Workload:
    """One evaluation program."""

    name: str
    #: generates mini-language source text for a given scale factor
    source_fn: Callable[[int], str]
    #: default scale (≈ how many main-loop iterations / work multiplier)
    default_scale: int = 1
    description: str = ""

    def source(self, scale: int | None = None) -> str:
        return self.source_fn(scale if scale is not None else self.default_scale)

    def kloc(self, scale: int | None = None) -> float:
        """Source size in KLoC (of the analogue, not the original)."""
        text = self.source(scale)
        lines = [ln for ln in text.splitlines() if ln.strip()]
        return len(lines) / 1000.0

    def machine(self, n_ranks: int = 64, **kwargs) -> MachineConfig:
        defaults = dict(n_ranks=n_ranks, ranks_per_node=8)
        defaults.update(kwargs)
        return MachineConfig(**defaults)


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    _REGISTRY[workload.name] = workload
    return workload


def all_workloads() -> dict[str, Workload]:
    """All registered analogues, keyed by name (import side effects)."""
    # Import lazily to avoid cycles; each module registers itself.
    from repro.workloads import (  # noqa: F401
        amg,
        chkpt,
        lulesh,
        micro,
        npb_bt,
        npb_cg,
        npb_ft,
        npb_lu,
        npb_sp,
        raxml,
    )

    return dict(_REGISTRY)


def get_workload(name: str) -> Workload:
    return all_workloads()[name.upper() if name.upper() in all_workloads() else name]
