"""CG analogue: conjugate gradient with allreduce dot products.

Structure mirrors NPB-CG: an outer iteration loop; per iteration a sparse
matrix-vector product (per-rank work fixed by the static row partition),
two dot products reduced with ``MPI_Allreduce``, vector updates, and a
halo exchange with the neighbouring rank.  The solver kernels are
statically partitioned (fixed workload — CG is the paper's bad-node case
study, Fig. 21); a data-dependent preconditioner consumes a large share of
each iteration without being a sensor, keeping sense-time coverage low —
CG has the lowest coverage of the NPB kernels in Table 1.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register


def _source(scale: int) -> str:
    niter = 15 * scale
    rows = 40
    nnz_per_row = 6
    return f"""
global int NITER = {niter};
global int ROWS = {rows};
global float x[{rows}];
global float r[{rows}];
global float p[{rows}];
global float q[{rows}];

void spmv() {{
    int i;
    for (i = 0; i < ROWS; i = i + 1) {{
        compute_units({nnz_per_row * 2});
        q[i] = p[i] * 0.5 + 1.0;
    }}
}}

float dot(float seed) {{
    int i; float acc = 0.0;
    for (i = 0; i < ROWS; i = i + 1) {{
        acc = acc + p[i] * q[i];
        compute_units(2);
    }}
    MPI_Allreduce(1);
    return acc + seed;
}}

void axpy(float alpha) {{
    int i;
    for (i = 0; i < ROWS; i = i + 1) {{
        x[i] = x[i] + alpha * p[i];
        r[i] = r[i] - alpha * q[i];
        compute_units(3);
    }}
}}

void halo_exchange() {{
    int rank; int size; int peer;
    rank = MPI_Comm_rank();
    size = MPI_Comm_size();
    peer = rank + 1;
    if (peer >= size) peer = 0;
    MPI_Sendrecv(peer, 16);
}}

void precondition() {{
    int trials; int budget;
    budget = 200 + rand() % 200;
    trials = 0;
    while (trials < budget) {{
        compute_units(10);
        trials = trials + 1;
    }}
}}

int main() {{
    int it; int i;
    float alpha; float beta; float rho;
    for (i = 0; i < ROWS; i = i + 1) {{
        x[i] = 1.0;
        p[i] = 1.0;
        r[i] = 1.0;
    }}
    for (it = 0; it < NITER; it = it + 1) {{
        spmv();
        precondition();
        rho = dot(0.1);
        alpha = rho / (rho + 1.0);
        axpy(alpha);
        beta = dot(0.2);
        halo_exchange();
        for (i = 0; i < ROWS; i = i + 1) {{
            p[i] = r[i] + beta * p[i];
            compute_units(2);
        }}
    }}
    printf("done");
    return 0;
}}
"""


CG = register(
    Workload(
        name="CG",
        source_fn=_source,
        default_scale=1,
        description="conjugate gradient: fixed spmv/dot/axpy kernels + allreduce",
    )
)
