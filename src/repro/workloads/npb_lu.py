"""LU analogue: SSOR sweeps with point-to-point pipelining.

NPB-LU performs lower/upper triangular sweeps whose wavefront is pipelined
with point-to-point messages between neighbouring ranks; the per-rank
per-sweep work is fixed by the static grid partition.  The analogue keeps
the two sweeps (several fixed loops each) and a pipelined neighbour
exchange per iteration.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register


def _source(scale: int) -> str:
    niter = 12 * scale
    cells = 24
    return f"""
global int NITER = {niter};

void jacld() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) compute_units(9);
}}

void blts() {{
    int i; int j;
    for (i = 0; i < {cells}; i = i + 1) {{
        for (j = 0; j < 4; j = j + 1) compute_units(3);
    }}
}}

void jacu() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) compute_units(9);
}}

void buts() {{
    int i; int j;
    for (i = 0; i < {cells}; i = i + 1) {{
        for (j = 0; j < 4; j = j + 1) compute_units(3);
    }}
}}

void pipeline_exchange() {{
    int rank; int size;
    rank = MPI_Comm_rank();
    size = MPI_Comm_size();
    if (rank % 2 == 0) {{
        if (rank + 1 < size) MPI_Send(rank + 1, 24);
        if (rank + 1 < size) MPI_Recv(rank + 1, 24);
    }} else {{
        MPI_Recv(rank - 1, 24);
        MPI_Send(rank - 1, 24);
    }}
}}

void rhs_update() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) compute_units(5);
    for (i = 0; i < {cells}; i = i + 1) compute_units(5);
}}

int main() {{
    int it;
    for (it = 0; it < NITER; it = it + 1) {{
        jacld();
        blts();
        pipeline_exchange();
        jacu();
        buts();
        rhs_update();
        MPI_Allreduce(5);
    }}
    printf("done");
    return 0;
}}
"""


LU = register(
    Workload(
        name="LU",
        source_fn=_source,
        default_scale=1,
        description="SSOR solver: fixed triangular sweeps + pipelined p2p",
    )
)
