"""SP analogue: scalar-pentadiagonal solver.

Like BT but with scalar (cheaper) per-line solves and a few collective
reductions; in Table 1 SP shows many sensors with very low instrumentation
overhead (0.22%).
"""

from __future__ import annotations

from repro.workloads.base import Workload, register


def _source(scale: int) -> str:
    niter = 12 * scale
    cells = 18
    return f"""
global int NITER = {niter};

void txinvr() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) compute_units(6);
}}

void x_solve() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) compute_units(7);
    for (i = 0; i < {cells}; i = i + 1) compute_units(4);
}}

void y_solve() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) compute_units(7);
    for (i = 0; i < {cells}; i = i + 1) compute_units(4);
}}

void z_solve() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) compute_units(7);
    for (i = 0; i < {cells}; i = i + 1) compute_units(4);
}}

void tzetar() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) compute_units(5);
}}

void exchange() {{
    int rank; int size; int peer;
    rank = MPI_Comm_rank();
    size = MPI_Comm_size();
    peer = rank + 1;
    if (peer >= size) peer = 0;
    MPI_Sendrecv(peer, 32);
}}

int main() {{
    int it;
    for (it = 0; it < NITER; it = it + 1) {{
        txinvr();
        x_solve();
        y_solve();
        z_solve();
        tzetar();
        exchange();
        MPI_Allreduce(3);
    }}
    printf("done");
    return 0;
}}
"""


SP = register(
    Workload(
        name="SP",
        source_fn=_source,
        default_scale=1,
        description="scalar-pentadiagonal solver: fixed sweeps + reductions",
    )
)
