"""RAxML analogue: phylogenetic likelihood kernels under adaptive search.

RAxML evaluates fixed-size likelihood kernels (per-site loops over the
alignment, fixed once the tree size is set) inside adaptive tree-search and
branch-length-optimization loops (convergence-driven, not fixed).  Table 1
shows many sensors (277 Comp + 24 Net) with moderate coverage.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register


def _source(scale: int) -> str:
    niter = 8 * scale
    sites = 28
    return f"""
global int NITER = {niter};
global int SITES = {sites};

void newview() {{
    int i;
    for (i = 0; i < SITES; i = i + 1) compute_units(8);
}}

float evaluate() {{
    int i; float lh = 0.0;
    for (i = 0; i < SITES; i = i + 1) {{
        lh = lh + 0.01;
        compute_units(5);
    }}
    MPI_Allreduce(1);
    return lh;
}}

void optimize_branch(int it) {{
    int steps; int budget;
    budget = 3 + (it * 7) % 6;
    steps = 0;
    while (steps < budget) {{
        newview();
        evaluate();
        steps = steps + 1;
    }}
}}

void rearrange() {{
    int i;
    for (i = 0; i < 12; i = i + 1) {{
        newview();
        compute_units(6);
    }}
}}

void broadcast_best() {{
    MPI_Bcast(0, 8);
}}

int main() {{
    int it;
    for (it = 0; it < NITER; it = it + 1) {{
        rearrange();
        optimize_branch(it);
        evaluate();
        broadcast_best();
    }}
    printf("done");
    return 0;
}}
"""


RAXML = register(
    Workload(
        name="RAXML",
        source_fn=_source,
        default_scale=1,
        description="phylogenetics: fixed likelihood kernels in adaptive loops",
    )
)
