"""BT analogue: block-tridiagonal solver with many small fixed kernels.

BT is the paper's high-sensor-count program (87 instrumented computation
sensors): three directional sweeps per step, each composed of several
distinct fixed-work loops (flux computation, forward elimination,
back-substitution), plus face exchanges.  The analogue reproduces that
shape with three sweep functions of several loops each.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register


def _sweep(axis: str, cells: int) -> str:
    return f"""
void {axis}_flux() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) {{
        compute_units(8);
    }}
    for (i = 0; i < {cells}; i = i + 1) {{
        compute_units(5);
    }}
}}

void {axis}_forward() {{
    int i; int j;
    for (i = 0; i < {cells}; i = i + 1) {{
        for (j = 0; j < 5; j = j + 1) compute_units(4);
    }}
}}

void {axis}_backsub() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) {{
        compute_units(6);
    }}
}}

void {axis}_solve() {{
    {axis}_flux();
    {axis}_forward();
    {axis}_backsub();
}}
"""


def _source(scale: int) -> str:
    niter = 10 * scale
    cells = 20
    sweeps = "".join(_sweep(axis, cells) for axis in ("x", "y", "z"))
    return f"""
global int NITER = {niter};
{sweeps}
void compute_rhs() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) compute_units(10);
    for (i = 0; i < {cells}; i = i + 1) compute_units(7);
    for (i = 0; i < {cells}; i = i + 1) compute_units(7);
}}

void exchange_faces() {{
    int rank; int size; int peer;
    rank = MPI_Comm_rank();
    size = MPI_Comm_size();
    peer = rank + 1;
    if (peer >= size) peer = 0;
    MPI_Sendrecv(peer, 48);
}}

void add_update() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) compute_units(3);
}}

int main() {{
    int it;
    for (it = 0; it < NITER; it = it + 1) {{
        compute_rhs();
        x_solve();
        y_solve();
        z_solve();
        exchange_faces();
        add_update();
    }}
    printf("done");
    return 0;
}}
"""


BT = register(
    Workload(
        name="BT",
        source_fn=_source,
        default_scale=1,
        description="block-tridiagonal solver: many small fixed sweep kernels",
    )
)
