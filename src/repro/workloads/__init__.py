"""Workload analogues of the paper's evaluation programs (§6.1).

Each module defines a scaled-down analogue, written in the mini language,
of one of the eight programs the paper evaluates: five NPB kernels (BT, CG,
FT, LU, SP) and three applications (AMG, LULESH, RAxML).  The analogues
keep the structural features Table 1 and Figs. 16–17 measure:

* CG — sparse mat-vec iterations with dot-product allreduces and neighbor
  exchanges (few sensors, very regular — the bad-node case study).
* FT — FFT steps dominated by ``MPI_Alltoall`` (the network case study).
* BT / SP — multi-sweep solvers with many small fixed computation loops
  (the high sensor-count programs).
* LU — SSOR sweeps with point-to-point pipelining.
* AMG — adaptive mesh refinement: loop bounds depend on runtime data, so
  almost nothing is fixed (lowest coverage in Table 1).
* LULESH — a fixed-work hydro step plus one large *non-fixed* snippet in
  the main loop (the long-interval program of Fig. 17).
* RAxML — fixed likelihood kernels under adaptive optimization loops.
"""

from repro.workloads.base import Workload, all_workloads, get_workload

__all__ = ["Workload", "all_workloads", "get_workload"]
