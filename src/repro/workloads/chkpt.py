"""CHKPT analogue: a stencil code with periodic checkpointing.

Not one of the paper's eight programs — an extension workload exercising
the third sensor component: IO.  Each outer step runs a fixed stencil,
then every step writes a fixed-size checkpoint slab with ``fwrite``; the
write is an IO v-sensor, so a filesystem slowdown (the classic
checkpoint-storm interference) shows up as a band in the *IO* performance
matrix while computation and network stay clean.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register


def _source(scale: int) -> str:
    niter = 15 * scale
    cells = 20
    slab = 512
    return f"""
global int NITER = {niter};

void stencil() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) compute_units(8);
}}

void write_checkpoint() {{
    fwrite({slab});
}}

void reduce_dt() {{
    MPI_Allreduce(2);
}}

int main() {{
    int step;
    for (step = 0; step < NITER; step = step + 1) {{
        stencil();
        reduce_dt();
        write_checkpoint();
    }}
    return 0;
}}
"""


CHKPT = register(
    Workload(
        name="CHKPT",
        source_fn=_source,
        default_scale=1,
        description="stencil + periodic fixed-size checkpoints (IO sensors)",
    )
)
