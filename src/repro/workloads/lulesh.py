"""LULESH analogue: shock hydrodynamics with one big non-fixed snippet.

The paper notes LULESH's main loop contains a large non-fixed snippet,
producing long sensor-free intervals (Fig. 17) while enough fixed kernels
remain for detection to work.  The analogue has fixed force/position
kernels plus a data-dependent time-step search (the non-fixed part) and an
``MPI_Allreduce`` for the global dt.
"""

from __future__ import annotations

from repro.workloads.base import Workload, register


def _source(scale: int) -> str:
    niter = 10 * scale
    elems = 30
    return f"""
global int NITER = {niter};
global int ELEMS = {elems};
global float dt = 1.0;

void calc_force() {{
    int i;
    for (i = 0; i < ELEMS; i = i + 1) compute_units(10);
}}

void calc_positions() {{
    int i;
    for (i = 0; i < ELEMS; i = i + 1) compute_units(6);
}}

void calc_constraints() {{
    int trials; int budget;
    budget = 40 + rand() % 200;
    trials = 0;
    while (trials < budget) {{
        compute_units(8);
        trials = trials + 1;
    }}
}}

void timestep_reduce() {{
    MPI_Allreduce(1);
}}

void boundary_exchange() {{
    int rank; int size; int peer;
    rank = MPI_Comm_rank();
    size = MPI_Comm_size();
    peer = rank + 1;
    if (peer >= size) peer = 0;
    MPI_Sendrecv(peer, 40);
}}

int main() {{
    int it;
    for (it = 0; it < NITER; it = it + 1) {{
        calc_force();
        boundary_exchange();
        calc_positions();
        calc_constraints();
        timestep_reduce();
    }}
    printf("done");
    return 0;
}}
"""


LULESH = register(
    Workload(
        name="LULESH",
        source_fn=_source,
        default_scale=1,
        description="shock hydro: fixed kernels + a large data-dependent snippet",
    )
)
