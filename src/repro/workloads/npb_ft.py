"""FT analogue: FFT steps dominated by ``MPI_Alltoall``.

Structure mirrors NPB-FT: per iteration a local 1-D FFT pass over the
rank's pencil (fixed work), a global transpose via ``MPI_Alltoall`` (large
payload — the operation that makes FT the paper's congestion showcase,
Figs. 1 and 22), and an evolve step (fixed pointwise work).
"""

from __future__ import annotations

from repro.workloads.base import Workload, register


def _source(scale: int) -> str:
    niter = 12 * scale
    pencil = 24
    return f"""
global int NITER = {niter};
global int PENCIL = {pencil};
global float data[{pencil}];

void fft_local() {{
    int stage; int i;
    for (stage = 0; stage < 3; stage = stage + 1) {{
        for (i = 0; i < PENCIL; i = i + 1) {{
            data[i] = data[i] * 0.99 + 0.01;
            compute_units(5);
        }}
    }}
}}

void transpose() {{
    MPI_Alltoall(8192);
}}

void evolve() {{
    int i;
    for (i = 0; i < PENCIL; i = i + 1) {{
        data[i] = data[i] + 1.0;
        compute_units(4);
    }}
}}

void checksum() {{
    int i; float acc = 0.0;
    for (i = 0; i < PENCIL; i = i + 1) {{
        acc = acc + data[i];
        compute_units(1);
    }}
    MPI_Allreduce(2);
}}

int main() {{
    int it; int i;
    for (i = 0; i < PENCIL; i = i + 1) data[i] = 1.0;
    for (it = 0; it < NITER; it = it + 1) {{
        fft_local();
        transpose();
        fft_local();
        evolve();
        checksum();
    }}
    printf("done");
    return 0;
}}
"""


FT = register(
    Workload(
        name="FT",
        source_fn=_source,
        default_scale=1,
        description="3-D FFT: fixed local FFT passes + heavy MPI_Alltoall transposes",
    )
)
