"""Shard workers: bounded-queue, virtual-time analysis partitions.

One :class:`ShardWorker` owns the :class:`~repro.runtime.server.
AnalysisServer` instances for every (job, stream) routed to it — one
quiet per-job server each, so tenants never share identity space or
history state.  Work arrives as sequenced sub-batches from the ingest
front and drains through a single-server discipline: batches are applied
in arrival order, each occupying the shard for its processing cost on
the run's virtual clock (``busy_until``).  The bounded queue is what
admission control pushes against — a full queue makes the front reject
with a retry-after hint derived from the head batch's projected
completion.

Processing cost comes from a :class:`ShardCostModel`: deterministic
(``base_us + per_row_us * rows``; the default, and the only mode golden
traces use) or measured (actual wall time of the apply, scaled to
virtual µs — what the scaling bench uses so speedups reflect real
ingest work).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.runtime.records import SliceSummary
from repro.runtime.server import AnalysisServer


@dataclass(frozen=True, slots=True)
class ShardCostModel:
    """Virtual processing cost of applying one sub-batch on a shard."""

    base_us: float = 0.0
    per_row_us: float = 0.0
    #: replace the deterministic estimate with the measured wall time of
    #: each apply (virtual µs = wall µs) — bench mode, not for goldens
    measured: bool = False

    def estimate(self, rows: int) -> float:
        return self.base_us + self.per_row_us * rows


@dataclass(slots=True)
class _QueuedBatch:
    job: int
    rank: int
    seq: int
    rows: list[SliceSummary]
    enqueued_at: float


@dataclass(slots=True)
class ShardWorker:
    """One analysis partition: per-job servers behind a bounded queue."""

    shard_id: int
    server_factory: Callable[[int], AnalysisServer]
    queue_limit: int = 64
    cost: ShardCostModel = field(default_factory=ShardCostModel)
    obs: object | None = None
    metrics: object | None = None

    #: per-job analysis servers, created on first batch for the job
    servers: dict[int, AnalysisServer] = field(default_factory=dict)
    #: virtual time the shard finishes its in-progress work
    busy_until: float = 0.0
    applied_batches: int = 0
    applied_rows: int = 0
    _queue: deque = field(default_factory=deque)
    #: EWMA of measured apply cost (µs), seeds retry-after projections
    _avg_cost_us: float = 100.0

    # -- queue -------------------------------------------------------------

    def has_capacity(self, n_new: int = 1) -> bool:
        return len(self._queue) + n_new <= self.queue_limit

    def queued(self) -> int:
        return len(self._queue)

    def enqueue(
        self, job: int, rank: int, seq: int, rows: list[SliceSummary], now: float
    ) -> None:
        """Append one sub-batch (admission control is the front's job)."""
        self._queue.append(_QueuedBatch(job, rank, seq, rows, now))
        if self.metrics is not None:
            self.metrics.counter(f"service.shard.{self.shard_id}.enqueued").inc()

    def retry_after(self, now: float) -> float:
        """Virtual time by which at least one queue slot will have freed:
        the projected completion of the head batch.  Always strictly in
        the future so a deferred retry makes progress."""
        if not self._queue:
            return now + 1.0
        head = self._queue[0]
        start = max(self.busy_until, head.enqueued_at)
        done = start + self._estimate(len(head.rows))
        return max(done, now + 1.0)

    def _estimate(self, rows: int) -> float:
        if self.cost.measured:
            return self._avg_cost_us
        return self.cost.estimate(rows)

    # -- processing --------------------------------------------------------

    def process_due(self, now: float) -> int:
        """Apply queued batches whose processing completes by ``now``."""
        applied = 0
        while self._queue:
            head = self._queue[0]
            start = max(self.busy_until, head.enqueued_at)
            if start + self._estimate(len(head.rows)) > now:
                break
            self._queue.popleft()
            self.busy_until = start + self._apply(head)
            applied += 1
        return applied

    def drain(self) -> int:
        """Apply everything queued, advancing the virtual clock past now."""
        applied = 0
        while self._queue:
            head = self._queue.popleft()
            start = max(self.busy_until, head.enqueued_at)
            self.busy_until = start + self._apply(head)
            applied += 1
        return applied

    def _apply(self, batch: _QueuedBatch) -> float:
        """Ingest one sub-batch into its job's server; return its cost."""
        server = self.servers.get(batch.job)
        if server is None:
            server = self.servers[batch.job] = self.server_factory(batch.job)
        if self.cost.measured:
            t0 = time.perf_counter()
            server.receive_batch(batch.rank, batch.rows, seq=batch.seq)
            cost = (time.perf_counter() - t0) * 1e6
            self._avg_cost_us += 0.25 * (cost - self._avg_cost_us)
        else:
            server.receive_batch(batch.rank, batch.rows, seq=batch.seq)
            cost = self.cost.estimate(len(batch.rows))
        self.applied_batches += 1
        self.applied_rows += len(batch.rows)
        if self.obs is not None:
            with self.obs.tracer.span(f"service.shard.{self.shard_id}.apply") as span:
                span.set("job", batch.job)
                span.set("rank", batch.rank)
                span.set("rows", len(batch.rows))
        if self.metrics is not None:
            self.metrics.counter(f"service.shard.{self.shard_id}.batches").inc()
            self.metrics.counter(f"service.shard.{self.shard_id}.rows").inc(len(batch.rows))
        return cost
