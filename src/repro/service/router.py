"""Consistent-hash routing of summary streams onto shard workers.

The sharded analysis service partitions work at ``(job, rank, sensor)``
granularity: every summary of one sensor on one rank of one job lands on
the same shard, so shard-local identity dedup is equivalent to global
dedup and per-(sensor, group) history state never splits across shards.

Placement uses a classic consistent-hash ring with virtual nodes.  Hashes
come from :func:`hashlib.blake2b`, never Python's builtin ``hash`` —
that one is salted per process, and routing must be a pure function of
the key so tests, goldens and multi-process deployments agree on where
every stream lives.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b

from repro.errors import ReproError
from repro.runtime.records import SliceSummary


def _point(data: bytes) -> int:
    """64-bit ring position of a byte string (stable across processes)."""
    return int.from_bytes(blake2b(data, digest_size=8).digest(), "big")


class ShardRouter:
    """Immutable consistent-hash ring over ``n_shards`` workers."""

    def __init__(self, n_shards: int, vnodes: int = 64) -> None:
        if n_shards < 1:
            raise ReproError(f"need at least one shard (got {n_shards})")
        self.n_shards = n_shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(n_shards):
            for v in range(vnodes):
                points.append((_point(b"shard:%d:%d" % (shard, v)), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_of(self, job: int, rank: int, sensor_id: int) -> int:
        """Owning shard of one (job, rank, sensor) stream."""
        key = _point(b"%d:%d:%d" % (job, rank, sensor_id))
        idx = bisect.bisect_right(self._points, key)
        if idx == len(self._points):
            idx = 0
        return self._owners[idx]

    def split(
        self, job: int, rank: int, summaries: list[SliceSummary]
    ) -> dict[int, list[SliceSummary]]:
        """Partition one rank batch into per-shard sub-batches.

        Sub-batches preserve the original row order, so the sequenced
        front -> shard hop replays each stream in send order.
        """
        out: dict[int, list[SliceSummary]] = {}
        cache: dict[int, int] = {}
        for s in summaries:
            shard = cache.get(s.sensor_id)
            if shard is None:
                shard = cache[s.sensor_id] = self.shard_of(job, rank, s.sensor_id)
            out.setdefault(shard, []).append(s)
        return out

    def placement(self, job: int, n_ranks: int, sensor_ids: list[int]) -> dict[int, int]:
        """shard -> stream count for one job (balance introspection)."""
        counts: dict[int, int] = {}
        for rank in range(n_ranks):
            for sensor_id in sensor_ids:
                shard = self.shard_of(job, rank, sensor_id)
                counts[shard] = counts.get(shard, 0) + 1
        return counts
