"""Sharded multi-tenant analysis service (ROADMAP: fleet-scale ingest).

Assembles the PR 2 sequenced/idempotent transport contract and the
columnar analysis engine into a service spine: an admission-controlled
ingest front (:class:`AnalysisService` / :class:`TenantPort`), a
consistent-hash :class:`ShardRouter`, bounded-queue
:class:`ShardWorker` partitions, and a per-job :class:`QueryMerger`
whose answers are bit-identical to an unsharded server.
"""

from repro.service.front import AnalysisService, TenantPort
from repro.service.merge import QueryMerger
from repro.service.router import ShardRouter
from repro.service.shard import ShardCostModel, ShardWorker

__all__ = [
    "AnalysisService",
    "TenantPort",
    "QueryMerger",
    "ShardRouter",
    "ShardCostModel",
    "ShardWorker",
]
