"""Per-job query merging across shard-local stores.

Shard-local *results* are not mergeable: the per-(sensor, group) history
normalization is a cumulative minimum over all ranks' durations in
canonical slice order — ranks of one sensor live on one shard, but a
job's sensors spread across shards and the per-cell matrix means then
mix sensors again.  Any distributive merge of shard matrices would
diverge from the unsharded server in the last bits.

So the merger merges *rows*: every shard store is append-only, and
:meth:`~repro.runtime.server.AnalysisServer.export_rows` exposes stable
insertion-position cursors, so each refresh gathers only the rows
appended since the last one and re-ingests them into a per-job merged
:class:`~repro.runtime.server.AnalysisServer`.  Ingest there is
order-invariant and identity-deduplicated, and shard routing keys
``(job, rank, sensor)`` are a function of the identity — so the merged
store holds exactly the job's deduplicated rows and every query is
bit-identical to an unsharded server by construction.  The differential
suite in ``tests/service/test_shard_equiv.py`` pins that equivalence
under random shard counts, interleavings and redelivery.
"""

from __future__ import annotations

from itertools import groupby
from operator import attrgetter

from repro.runtime.server import AnalysisServer


class QueryMerger:
    """Incremental row gatherer + merged server for one tenant."""

    def __init__(self, port) -> None:
        self.port = port
        service = port.service
        #: insertion-position cursor per shard id
        self._cursors: dict[int, int] = {}
        self.merged = AnalysisServer(
            n_ranks=port.n_ranks,
            window_us=service.window_us,
            batch_period_us=service.batch_period_us,
            threshold=service.threshold,
            engine=service.engine,
        )

    def refresh(self) -> AnalysisServer:
        """Pull row deltas from every shard; return the merged server.

        After the gather, the merged server's transport-facing counters
        are overwritten with the front's authoritative per-job accounting
        (the merge hop is internal plumbing, not received traffic) and
        its degraded set mirrors the port's.
        """
        port = self.port
        service = port.service
        job = port.job_id
        merged = self.merged
        pulled = 0
        duplicate_summaries = 0
        for shard in service.shards:
            server = shard.servers.get(job)
            if server is None:
                continue
            rows, total = server.export_rows(self._cursors.get(shard.shard_id, 0))
            duplicate_summaries += server.duplicate_summaries
            if rows:
                pulled += len(rows)
                for rank, run in groupby(rows, key=attrgetter("rank")):
                    merged.receive_batch(rank, list(run))
            self._cursors[shard.shard_id] = total
        merged.degraded = set(port.degraded)
        merged.bytes_received = port.bytes_received
        merged.batches_received = port.batches_received
        merged.summaries_received = port.summaries_received
        merged.duplicate_batches = port.duplicate_batches
        merged.duplicate_summaries = duplicate_summaries
        if pulled:
            if service.obs is not None:
                with service.obs.tracer.span("service.merge.refresh") as span:
                    span.set("job", job)
                    span.set("rows", pulled)
            if service.metrics is not None:
                service.metrics.counter("service.merge.rows").inc(pulled)
        return merged
