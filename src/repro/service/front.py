"""The multi-tenant ingest front of the sharded analysis service.

:class:`AnalysisService` assembles the pieces: a consistent-hash
:class:`~repro.service.router.ShardRouter`, N bounded-queue
:class:`~repro.service.shard.ShardWorker` partitions, and one
:class:`TenantPort` per registered job.  A port duck-types the
:class:`~repro.runtime.server.AnalysisServer` surface on both sides:

* **ingest** — each job's :class:`~repro.runtime.transport.
  ReliableTransport` (or the runtime directly) calls ``receive_batch``;
  the front dedups against the job's per-rank sequence watermark, tags
  rows with the tenant's ``job_id``, splits the batch into per-shard
  sub-batches, and applies admission control: if any target shard's
  queue is full the whole batch is rejected *without consuming its
  sequence number*, and a retry-after hint (the head-of-queue projected
  completion) is parked for the transport's ``pop_retry_hint`` probe, so
  its exponential backoff is re-timed instead of burning the wire.
  When the service is built with ``rate_limit_rows_per_ms`` each tenant
  also gets a token bucket (rows per virtual millisecond, burst capacity
  ``rate_burst_rows``); a batch that would overdraw the bucket is
  rejected through the same retry-after machinery, with the hint timed
  to when the bucket will have refilled enough.  Accepted batches get
  dense per-(shard, rank) sub-sequence numbers — the PR 2
  sequenced/idempotent contract reused as the front -> shard protocol.

* **query** — matrix / summary / inter-process queries delegate to the
  job's :class:`~repro.service.merge.QueryMerger`, whose refreshed
  merged server is bit-identical to an unsharded server fed only this
  job's records.

Rejections never lose data: the sequence number stays unconsumed, the
transport redelivers, and watermark dedup upholds exactly-once effect —
``tests/service/test_backpressure.py`` pins all three.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ReproError
from repro.runtime.records import SliceSummary
from repro.runtime.seqtrack import SequenceTracker
from repro.runtime.server import AnalysisServer
from repro.service.merge import QueryMerger
from repro.service.router import ShardRouter
from repro.service.shard import ShardCostModel, ShardWorker


class AnalysisService:
    """N shard workers behind a consistent-hash ingest front."""

    def __init__(
        self,
        n_shards: int,
        *,
        window_us: float = 200_000.0,
        batch_period_us: float = 100_000.0,
        threshold: float = 0.7,
        engine: str = "columnar",
        queue_limit: int = 64,
        cost: ShardCostModel | None = None,
        vnodes: int = 64,
        rate_limit_rows_per_ms: float | None = None,
        rate_burst_rows: float | None = None,
        obs: object | None = None,
        fabric: object | None = None,
    ) -> None:
        if rate_limit_rows_per_ms is not None and rate_limit_rows_per_ms <= 0:
            raise ReproError("rate_limit_rows_per_ms must be positive")
        self.window_us = window_us
        self.batch_period_us = batch_period_us
        self.threshold = threshold
        self.engine = engine
        self.rate_limit_rows_per_ms = rate_limit_rows_per_ms
        #: default burst: 4x the per-ms rate, never below one batch row
        self.rate_burst_rows = (
            rate_burst_rows
            if rate_burst_rows is not None
            else (4.0 * rate_limit_rows_per_ms if rate_limit_rows_per_ms else None)
        )
        self.obs = obs
        self.metrics = obs.metrics if obs is not None else None
        self.router = ShardRouter(n_shards, vnodes=vnodes)
        self.cost = cost if cost is not None else ShardCostModel()
        #: optional process fabric (``repro.parallel.ProcessShardFabric``):
        #: when given, every shard's ingest side lives in a child OS
        #: process — same queue/admission arithmetic, bit-identical merges
        self.fabric = fabric
        if fabric is not None:
            self.shards = [
                fabric.shard(
                    i,
                    queue_limit=queue_limit,
                    cost=self.cost,
                    window_us=window_us,
                    batch_period_us=batch_period_us,
                    threshold=threshold,
                    engine=engine,
                    obs=obs,
                    metrics=self.metrics,
                )
                for i in range(n_shards)
            ]
        else:
            self.shards = [
                ShardWorker(
                    shard_id=i,
                    server_factory=self._shard_server,
                    queue_limit=queue_limit,
                    cost=self.cost,
                    obs=obs,
                    metrics=self.metrics,
                )
                for i in range(n_shards)
            ]
        self.ports: dict[int, TenantPort] = {}
        #: virtual clock — the max time any port or pump has observed
        self.clock = 0.0
        self._job_ranks: dict[int, int] = {}

    @property
    def n_shards(self) -> int:
        return self.router.n_shards

    def _shard_server(self, job: int) -> AnalysisServer:
        # Quiet servers: the service layer owns observability, the
        # shard-local stores just hold rows.
        return AnalysisServer(
            n_ranks=self._job_ranks.get(job, 0),
            window_us=self.window_us,
            batch_period_us=self.batch_period_us,
            threshold=self.threshold,
            engine=self.engine,
        )

    def register_job(self, job_id: int, n_ranks: int) -> "TenantPort":
        """Admit one tenant; returns its ingest/query port."""
        if job_id in self.ports:
            raise ReproError(f"job {job_id} already registered")
        self._job_ranks[job_id] = n_ranks
        if self.fabric is not None:
            self.fabric.register_job(job_id, n_ranks)
        port = TenantPort(self, job_id, n_ranks)
        self.ports[job_id] = port
        if self.metrics is not None:
            self.metrics.counter("service.jobs_registered").inc()
        return port

    def pump(self, now: float) -> None:
        """Advance virtual time: let every shard apply due work."""
        self.clock = max(self.clock, now)
        for shard in self.shards:
            shard.process_due(self.clock)

    def finish(self) -> None:
        """Drain every shard queue (end of run)."""
        for shard in self.shards:
            shard.drain()
            self.clock = max(self.clock, shard.busy_until)

    def close(self) -> None:
        """Shut down process-backed shards (no-op for in-process ones).

        Every port's merged view is refreshed first, so per-job queries
        stay answerable (and stable) after the children are gone.
        """
        if self.fabric is not None:
            for port in self.ports.values():
                port._merger.refresh()
            self.fabric.close()

    def describe(self) -> str:
        queued = sum(s.queued() for s in self.shards)
        return (
            f"shards={self.n_shards} jobs={len(self.ports)} "
            f"applied={sum(s.applied_batches for s in self.shards)} queued={queued}"
        )


class TenantPort:
    """One job's window onto the service (AnalysisServer duck-type)."""

    def __init__(self, service: AnalysisService, job_id: int, n_ranks: int) -> None:
        self.service = service
        self.job_id = job_id
        self.n_ranks = n_ranks
        self.window_us = service.window_us
        self.batch_period_us = service.batch_period_us
        self.bytes_received = 0
        self.batches_received = 0
        self.summaries_received = 0
        self.duplicate_batches = 0
        #: admission rejections issued to this tenant
        self.rejected_batches = 0
        #: of which: rejections from the per-tenant token bucket
        self.ratelimited_batches = 0
        self.degraded: set[int] = set()
        #: token bucket (rows per virtual ms); starts full at burst
        self._rate = service.rate_limit_rows_per_ms
        self._burst = service.rate_burst_rows if self._rate is not None else None
        self._tokens = self._burst if self._burst is not None else 0.0
        self._refilled_at = 0.0
        self._seqs: dict[int, SequenceTracker] = {}
        #: dense sub-sequence counters per (shard, rank) stream
        self._sub_seqs: dict[tuple[int, int], int] = {}
        #: retry-after hints parked for the transport, keyed (rank, seq)
        self._retry_hints: dict[tuple[int, int], float] = {}
        self._merger = QueryMerger(self)

    # -- ingest ------------------------------------------------------------

    def receive_batch(
        self,
        rank: int,
        summaries: list[SliceSummary],
        seq: int | None = None,
        encoded_bytes: int | None = None,
    ) -> bool:
        """Admit one rank batch; False on duplicate, rate, or back-pressure.

        A rate-limit or back-pressure rejection leaves the sequence
        number unconsumed (the transport's redelivery will be brand-new
        to the watermark) and parks a retry-after hint for
        :meth:`pop_retry_hint`.  The token bucket is checked before
        shard capacity and debited only once both admit the batch, so a
        rejection never burns tokens.
        """
        service = self.service
        metrics = service.metrics
        self.batches_received += 1
        if encoded_bytes is None:
            encoded_bytes = 8 + SliceSummary.WIRE_BYTES * len(summaries)
        self.bytes_received += encoded_bytes
        tracker = None
        if seq is not None:
            tracker = self._seqs.setdefault(rank, SequenceTracker())
            if tracker.is_acked(seq):
                self.duplicate_batches += 1
                if metrics is not None:
                    metrics.counter("service.front.duplicates").inc()
                return False
        now = max(
            service.clock, max((s.t_slice_start for s in summaries), default=0.0)
        )
        service.clock = now
        job = self.job_id
        rows = [s if s.job_id == job else replace(s, job_id=job) for s in summaries]
        if tracker is not None and self._rate is not None:
            rate_per_us = self._rate / 1000.0
            self._tokens = min(
                self._burst,
                self._tokens + (now - self._refilled_at) * rate_per_us,
            )
            self._refilled_at = now
            # Tolerance so a retry at exactly the hinted refill time is
            # admitted despite float rounding in rate conversions.
            if len(rows) > self._tokens + 1e-9:
                retry_at = now + (len(rows) - self._tokens) / rate_per_us
                self._retry_hints[(rank, seq)] = retry_at
                self.rejected_batches += 1
                self.ratelimited_batches += 1
                if metrics is not None:
                    metrics.counter("service.ratelimit.rejected").inc()
                return False
        split = service.router.split(job, rank, rows)
        targets = [service.shards[i] for i in split]
        for shard in targets:
            shard.process_due(now)
        if tracker is not None:
            full = [shard for shard in targets if not shard.has_capacity()]
            if full:
                retry_at = max(shard.retry_after(now) for shard in full)
                self._retry_hints[(rank, seq)] = retry_at
                self.rejected_batches += 1
                if metrics is not None:
                    metrics.counter("service.backpressure.rejected").inc()
                return False
            tracker.accept(seq)
            if self._rate is not None:
                self._tokens -= len(rows)
        self.summaries_received += len(rows)
        for shard_id, sub_rows in split.items():
            key = (shard_id, rank)
            sub_seq = self._sub_seqs.get(key, 0)
            self._sub_seqs[key] = sub_seq + 1
            service.shards[shard_id].enqueue(job, rank, sub_seq, sub_rows, now)
        if metrics is not None:
            metrics.counter("service.front.batches").inc()
            metrics.counter("service.front.rows").inc(len(rows))
        return True

    # -- transport contract ------------------------------------------------

    def pop_retry_hint(self, rank: int, seq: int) -> float | None:
        """Retry-after of the most recent rejection of (rank, seq), once."""
        return self._retry_hints.pop((rank, seq), None)

    def is_acked(self, rank: int, seq: int) -> bool:
        tracker = self._seqs.get(rank)
        return tracker is not None and tracker.is_acked(seq)

    def ack_watermark(self, rank: int) -> int:
        tracker = self._seqs.get(rank)
        return -1 if tracker is None else tracker.watermark

    def mark_degraded(self, rank: int) -> None:
        self.degraded.add(rank)

    # -- queries (merged, bit-identical to unsharded) ----------------------

    @property
    def server(self) -> AnalysisServer:
        """This job's merged analysis server, refreshed to now."""
        return self._merger.refresh()

    @property
    def inter_events(self):
        return self._merger.merged.inter_events

    @property
    def duplicate_summaries(self) -> int:
        return self._merger.merged.duplicate_summaries

    @property
    def stored_summaries(self) -> int:
        return self.server.stored_summaries

    @property
    def history(self):
        return self.server.history

    def detect_inter_process(self, min_ranks: int = 2):
        return self.server.detect_inter_process(min_ranks)

    def performance_matrix(self, sensor_type):
        return self.server.performance_matrix(sensor_type)

    def mean_rank_performance(self, sensor_type):
        return self.server.mean_rank_performance(sensor_type)

    def silent_ranks(self, now: float, staleness_us: float | None = None) -> list[int]:
        return self.server.silent_ranks(now, staleness_us)
