"""v-sensor selection rules (§4).

* **Scope** — only *global* v-sensors are instrumented: their history stays
  valid for the whole run, so one scalar standard time per sensor suffices.
* **Granularity** — a ``max_depth`` cut: out-most loops are depth 0; only
  sensors nested shallower than ``max_depth`` are kept (fine-grained sensors
  additionally get runtime shutoff, §5.3).
* **Nested sensors** — the probes themselves are not fixed-workload, so an
  instrumented sensor inside another would destroy the outer one; prefer
  the outermost of any nested pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics import Diagnostic, ReasonCode, Span, note
from repro.sensors.asttools import subtree_ids
from repro.sensors.identify import IdentificationResult
from repro.sensors.model import SensorType, VSensor


@dataclass(frozen=True, slots=True)
class SensorEstimate:
    """The selector's compile-time cost/frequency guess for one sensor.

    Historically computed for the granularity cut and then dropped; now
    exported with the plan so the runtime overhead governor can order
    sensors by information density (``None`` = the static analysis could
    not tell — treated conservatively downstream).
    """

    #: estimated work units per snippet execution
    est_work: float | None = None
    #: estimated executions per invocation of the enclosing function
    #: (product of enclosing counted-loop trip counts)
    est_calls: float | None = None


@dataclass(slots=True)
class InstrumentationPlan:
    """The sensors chosen for probing, with bookkeeping for reports."""

    selected: list[VSensor] = field(default_factory=list)
    rejected_scope: list[VSensor] = field(default_factory=list)
    rejected_depth: list[VSensor] = field(default_factory=list)
    rejected_nested: list[VSensor] = field(default_factory=list)
    #: calls to externs too small to wrap in probes (math etc.)
    rejected_tiny: list[VSensor] = field(default_factory=list)
    #: one structured diagnostic per rejected sensor ("explain" support)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: sensor_id → :class:`SensorEstimate` for every identified sensor
    estimates: dict[int, SensorEstimate] = field(default_factory=dict)

    def by_type(self) -> dict[SensorType, int]:
        counts: dict[SensorType, int] = {}
        for s in self.selected:
            counts[s.sensor_type] = counts.get(s.sensor_type, 0) + 1
        return counts

    def summary(self) -> str:
        """Table-1 style instrumentation summary, e.g. ``87Comp+5Net``."""
        counts = self.by_type()
        parts = [
            f"{counts[t]}{t.value}"
            for t in (SensorType.COMPUTATION, SensorType.NETWORK, SensorType.IO)
            if t in counts
        ]
        return "+".join(parts) if parts else "0"


def _reject(plan: InstrumentationPlan, bucket: list, sensor: VSensor,
            code: ReasonCode, message: str) -> None:
    bucket.append(sensor)
    plan.diagnostics.append(
        note(code, message, span=Span.from_node(sensor.snippet.node), origin="select")
    )


def _estimated_too_small(sensor: VSensor, estimator, threshold: float) -> bool:
    estimate = estimator.estimate_snippet(sensor.snippet.node)
    return estimate is not None and estimate < threshold


def _is_tiny_extern_call(sensor: VSensor, result: IdentificationResult) -> bool:
    """Call snippets to externs marked not probe-worthy (math, rand, ...):
    the probe would dwarf the call."""
    from repro.frontend.ast_nodes import CallExpr
    from repro.sensors.model import SnippetKind

    if sensor.snippet.kind is not SnippetKind.CALL:
        return False
    node = sensor.snippet.node
    assert isinstance(node, CallExpr)
    model = result.summaries.extern_model(node.callee)
    return model is not None and not model.probe_worthy


def _node_frequencies(module, estimator) -> dict[int, float | None]:
    """node_id → estimated executions per enclosing-function invocation.

    A recursive walk over each function body carrying the product of
    enclosing counted-loop trip counts.  ``None`` propagates for unknowable
    multipliers (while-loops, non-canonical for-loops).  Both statement and
    call-expression node ids are recorded, matching the two snippet kinds.
    """
    from repro.frontend import ast_nodes as A

    freqs: dict[int, float | None] = {}

    def record_exprs(stmt, freq):
        for expr in A.walk_exprs(stmt):
            if isinstance(expr, A.CallExpr):
                freqs[expr.node_id] = freq

    def walk(stmt, freq):
        if stmt is None:
            return
        if isinstance(stmt, A.Block):
            for s in stmt.stmts:
                walk(s, freq)
            return
        freqs[stmt.node_id] = freq
        record_exprs(stmt, freq)
        if isinstance(stmt, A.ForStmt):
            trips = estimator.trip_count(stmt)
            inner = None if freq is None or trips is None else freq * trips
            walk(stmt.body, inner)
        elif isinstance(stmt, A.WhileStmt):
            walk(stmt.body, None)
        elif isinstance(stmt, A.IfStmt):
            walk(stmt.then_body, freq)
            walk(stmt.else_body, freq)

    for fn in module.functions:
        walk(fn.body, 1.0)
    return freqs


def _functions_reachable_from(
    sensor: VSensor, subtree: frozenset[int], result: IdentificationResult
) -> set[str]:
    """Functions whose code executes inside ``sensor``'s snippet (via calls
    in the snippet's subtree, transitively through the call graph)."""
    from repro.ir.instructions import CallInstr

    fn = result.ir.functions.get(sensor.function)
    if fn is None:
        return set()
    roots: set[str] = set()
    for instr in fn.instructions():
        node = instr.ast_node
        if node is None or node.node_id not in subtree:
            continue
        if isinstance(instr, CallInstr) and not instr.is_indirect:
            if result.ir.has_function(instr.callee):
                roots.add(instr.callee)
    reachable: set[str] = set()
    stack = list(roots)
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        if name in result.callgraph.graph:
            stack.extend(result.callgraph.graph.successors(name))
    return reachable


def select_sensors(
    result: IdentificationResult,
    max_depth: int = 3,
    min_estimated_work: float = 0.0,
) -> InstrumentationPlan:
    """Apply the selection rules to the identification result.

    ``min_estimated_work`` additionally skips sensors whose compile-time
    work estimate (``repro.sensors.estimate``) is known and below the
    threshold — the concrete form of §4's "this compile-time strategy is
    only an estimation" granularity cut.  Unknown estimates are kept (the
    runtime shutoff of §5.3 covers those).
    """
    plan = InstrumentationPlan()

    # Selection owns the ``selected`` markers: clear any earlier run's flags
    # so one (possibly cached and shared) identification result can feed
    # many selections without the marks accumulating.
    for sensor in result.sensors:
        sensor.selected = False

    estimator = None
    if result.ir.ast is not None:
        from repro.sensors.estimate import WorkloadEstimator

        estimator = WorkloadEstimator(result.ir.ast, externs=result.summaries.externs)
        freqs = _node_frequencies(result.ir.ast, estimator)
        for sensor in result.sensors:
            plan.estimates[sensor.sensor_id] = SensorEstimate(
                est_work=estimator.estimate_snippet(sensor.snippet.node),
                est_calls=freqs.get(sensor.snippet.node.node_id),
            )
    if min_estimated_work <= 0.0:
        # Estimates feed the runtime governor either way, but the
        # granularity cut below stays opt-in: only applied when asked.
        cut_estimator = None
    else:
        cut_estimator = estimator

    candidates: list[VSensor] = []
    for sensor in result.sensors:
        if not sensor.is_global:
            _reject(
                plan, plan.rejected_scope, sensor, ReasonCode.LOCAL_SCOPE,
                f"{sensor.snippet.spelled} is fixed only within "
                f"{len(sensor.scope_loops)} enclosing loop(s), not program-wide",
            )
        elif sensor.snippet.depth >= max_depth:
            _reject(
                plan, plan.rejected_depth, sensor, ReasonCode.TOO_DEEP,
                f"nesting depth {sensor.snippet.depth} >= max_depth {max_depth}",
            )
        elif _is_tiny_extern_call(sensor, result):
            _reject(
                plan, plan.rejected_tiny, sensor, ReasonCode.BELOW_GRANULARITY,
                f"{sensor.snippet.spelled} is too small to wrap in probes",
            )
        elif cut_estimator is not None and _estimated_too_small(
            sensor, cut_estimator, min_estimated_work
        ):
            _reject(
                plan, plan.rejected_tiny, sensor, ReasonCode.BELOW_GRANULARITY,
                f"estimated work below min_estimated_work={min_estimated_work:g}",
            )
        else:
            candidates.append(sensor)

    # Nested exclusion: drop any candidate whose probes would execute inside
    # another candidate's probes (prefer the outermost).  Two cases:
    # same-function AST nesting, and dynamic nesting through calls — a
    # candidate sitting in a function reachable from calls inside another
    # candidate's subtree.
    subtrees = {
        s.sensor_id: subtree_ids(s.snippet.node) for s in candidates if s.function
    }
    reachable = {
        s.sensor_id: _functions_reachable_from(s, subtrees[s.sensor_id], result)
        for s in candidates
    }
    kept: list[VSensor] = []
    for sensor in candidates:
        nested = any(
            other is not sensor
            and (
                (
                    other.function == sensor.function
                    and sensor.sensor_id in subtrees[other.sensor_id]
                )
                or sensor.function in reachable[other.sensor_id]
            )
            for other in candidates
        )
        if nested:
            _reject(
                plan, plan.rejected_nested, sensor, ReasonCode.NESTED_SENSOR,
                f"{sensor.snippet.spelled} executes inside another selected "
                "sensor's probes (outermost preferred)",
            )
        else:
            kept.append(sensor)

    for sensor in kept:
        sensor.selected = True
    plan.selected = kept
    return plan
