"""Instrumentation (workflow step 4, §4).

Selection applies the paper's three rules — scope (only global v-sensors),
granularity (``max_depth``), and nested-sensor exclusion (prefer the
outermost) — then the rewriter splices ``vs_tick(id)`` / ``vs_tock(id)``
probe calls around each selected snippet and can emit the modified source
text (step 5 compiles that text with the program's original compiler; here
the simulator interprets the instrumented AST directly and the emitted text
round-trips through the parser).
"""

from repro.instrument.select import InstrumentationPlan, select_sensors
from repro.instrument.rewrite import InstrumentedProgram, instrument_module

__all__ = [
    "InstrumentationPlan",
    "InstrumentedProgram",
    "instrument_module",
    "select_sensors",
]
