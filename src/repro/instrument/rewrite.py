"""Tick/Tock splicing (workflow step 4) and modified-source emission (step 5).

The rewriter mutates the parsed AST in place, inserting ``vs_tick(id)``
before and ``vs_tock(id)`` after the statement that carries each selected
snippet.  Node identity is preserved, so sensor ids remain valid and the
instrumented AST can be fed straight to the simulator; the emitted source
text round-trips through the parser for the "compile with the original
compiler" path.

Snippets whose carrier statement does not sit directly inside a block (a
call in a for-loop header, for instance) cannot be wrapped and are skipped
with a note — mirroring the tool's practical restriction to statement
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics import Diagnostic, ReasonCode, Severity, Span
from repro.errors import InstrumentError
from repro.frontend import ast_nodes as A
from repro.frontend.location import SourceLoc
from repro.frontend.pretty import format_module
from repro.sensors.model import SensorType, VSensor

TICK = "vs_tick"
TOCK = "vs_tock"


@dataclass(slots=True)
class SensorInfo:
    """Runtime-facing description of one instrumented sensor."""

    sensor_id: int
    sensor_type: SensorType
    function: str
    line: int
    spelled: str
    rank_invariant: bool


@dataclass(slots=True)
class InstrumentedProgram:
    """The instrumented AST plus the sensor registry the runtime needs."""

    module: A.Module
    sensors: dict[int, SensorInfo] = field(default_factory=dict)
    skipped: list[VSensor] = field(default_factory=list)
    #: one warning per skipped sensor (probe could not be spliced)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def source(self) -> str:
        """Modified source text (workflow step 5 input)."""
        return format_module(self.module)


def _build_owner_maps(
    module: A.Module,
) -> tuple[dict[int, tuple[A.Block, A.Stmt]], dict[int, A.Stmt]]:
    """Map statement id -> (owning block, stmt) and expr id -> carrier stmt."""
    stmt_owner: dict[int, tuple[A.Block, A.Stmt]] = {}
    expr_owner: dict[int, A.Stmt] = {}
    for fn in module.functions:
        if fn.body is None:
            continue
        for stmt in A.walk_stmts(fn.body):
            if isinstance(stmt, A.Block):
                for child in stmt.stmts:
                    stmt_owner[child.node_id] = (stmt, child)
            for expr in A.walk_exprs(stmt):
                expr_owner[expr.node_id] = stmt
    return stmt_owner, expr_owner


def _probe(name: str, sensor_id: int, loc: SourceLoc) -> A.ExprStmt:
    call = A.CallExpr(loc=loc, callee=name, args=[A.IntLit(loc=loc, value=sensor_id)])
    return A.ExprStmt(loc=loc, expr=call)


def instrument_module(
    module: A.Module,
    sensors: list[VSensor],
) -> InstrumentedProgram:
    """Splice probes for ``sensors`` into ``module`` (mutating it)."""
    program = InstrumentedProgram(module=module)
    stmt_owner, expr_owner = _build_owner_maps(module)

    # Insert outermost-first so indices found per insertion stay valid: we
    # re-find the index at each insertion via identity search.
    for sensor in sensors:
        node = sensor.snippet.node
        carrier: A.Stmt | None
        if isinstance(node, A.Stmt):
            entry = stmt_owner.get(node.node_id)
            carrier = entry[1] if entry else None
            block = entry[0] if entry else None
        else:
            carrier = expr_owner.get(node.node_id)
            entry = stmt_owner.get(carrier.node_id) if carrier is not None else None
            block = entry[0] if entry else None
        if carrier is None or block is None:
            program.skipped.append(sensor)
            program.diagnostics.append(
                Diagnostic(
                    severity=Severity.WARNING,
                    code=ReasonCode.UNSPLICEABLE,
                    message=f"{sensor.snippet.spelled} has no statement-boundary "
                    "carrier; probes not inserted",
                    span=Span.from_node(sensor.snippet.node),
                    origin="instrument",
                )
            )
            continue
        try:
            idx = next(i for i, s in enumerate(block.stmts) if s is carrier)
        except StopIteration:
            raise InstrumentError(
                f"carrier statement for sensor at {sensor.loc} vanished during rewriting"
            )
        block.stmts.insert(idx + 1, _probe(TOCK, sensor.sensor_id, node.loc))
        block.stmts.insert(idx, _probe(TICK, sensor.sensor_id, node.loc))
        program.sensors[sensor.sensor_id] = SensorInfo(
            sensor_id=sensor.sensor_id,
            sensor_type=sensor.sensor_type,
            function=sensor.function,
            line=sensor.loc.line,
            spelled=sensor.snippet.spelled,
            rank_invariant=sensor.rank_invariant,
        )
    return program
