"""Developer annotations: manual include/exclude of snippets (§3.1).

The paper notes that developers understand program semantics best and
could annotate fixed-workload snippets by hand — automation exists because
manual annotation does not scale, not because it is unwelcome.  This
module provides the manual path:

* ``exclude`` vetoes an identified sensor (e.g. the developer knows a
  "fixed" loop's cache behaviour is bimodal and prefers silence);
* ``include`` asserts that a snippet the analysis rejected *is* fixed
  workload (e.g. fixedness depends on an input file the compiler cannot
  see) and instruments it; the assertion is the developer's to keep.

Snippets are addressed by (function name, source line).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import ast_nodes as A
from repro.ir.instructions import CallInstr
from repro.sensors.identify import IdentificationResult
from repro.sensors.model import SensorType, Snippet, VSensor


@dataclass(frozen=True, slots=True)
class SnippetRef:
    """Addresses one snippet in source terms."""

    function: str
    line: int


@dataclass(slots=True)
class Annotations:
    """A set of manual include/exclude marks."""

    include: list[SnippetRef] = field(default_factory=list)
    exclude: list[SnippetRef] = field(default_factory=list)

    def is_excluded(self, sensor: VSensor) -> bool:
        return any(
            ref.function == sensor.function and ref.line == sensor.loc.line
            for ref in self.exclude
        )

    def forced_sensors(self, result: IdentificationResult) -> list[VSensor]:
        """Build sensors for force-included snippets the analysis rejected."""
        already = {(s.function, s.loc.line) for s in result.sensors}
        forced: list[VSensor] = []
        for ref in self.include:
            if (ref.function, ref.line) in already:
                continue
            snippet = _find_snippet(result, ref)
            if snippet is None:
                continue
            forced.append(
                VSensor(
                    snippet=snippet,
                    sensor_type=_classify(result, snippet),
                    scope_loops=list(snippet.enclosing_loops),
                    is_function_scope=True,
                    is_global=True,  # the developer asserts program-wide fixedness
                    rank_invariant=True,
                )
            )
        return forced


def _find_snippet(result: IdentificationResult, ref: SnippetRef) -> Snippet | None:
    for snippet in result.snippets:
        if snippet.function == ref.function and snippet.loc.line == ref.line:
            return snippet
    return None


def _classify(result: IdentificationResult, snippet: Snippet) -> SensorType:
    """Same classification the identifier uses (net > io > comp)."""
    fn = result.ir.functions.get(snippet.function)
    if fn is None:
        return SensorType.COMPUTATION
    from repro.sensors.asttools import subtree_ids

    sub = subtree_ids(snippet.node)
    has_net = has_io = False
    for instr in fn.instructions():
        node = instr.ast_node
        if node is None or node.node_id not in sub:
            continue
        if not isinstance(instr, CallInstr) or instr.is_indirect:
            continue
        model = result.summaries.extern_model(instr.callee)
        if model is not None:
            has_net |= model.category == "net"
            has_io |= model.category == "io"
            continue
        summary = result.summaries.summaries.get(instr.callee)
        if summary is not None:
            has_net |= summary.contains_net
            has_io |= summary.contains_io
    if has_net:
        return SensorType.NETWORK
    if has_io:
        return SensorType.IO
    return SensorType.COMPUTATION


def apply_annotations(
    result: IdentificationResult, annotations: Annotations
) -> IdentificationResult:
    """Return ``result`` with manual marks applied (mutates the lists)."""
    kept = [s for s in result.sensors if not annotations.is_excluded(s)]
    kept.extend(annotations.forced_sensors(result))
    result.sensors = kept
    return result
