"""Shard workers in real OS processes behind the existing ShardRouter.

The in-process :class:`~repro.service.shard.ShardWorker` keeps two
separable responsibilities in one object: the *virtual-time queue
discipline* (bounded queue, admission capacity, deterministic cost
clock) and the *actual ingest work* (applying rows to shard-local
:class:`~repro.runtime.server.AnalysisServer`\\ s).  The process fabric
splits them at exactly that seam:

* :class:`ProcessShardWorker` — the parent-side proxy.  It *is* a
  ``ShardWorker`` (same queue, same admission arithmetic, same virtual
  clock — so the front's back-pressure behaviour is bit-identical), but
  ``_apply`` ships the sub-batch to a child process as a framed
  :data:`~repro.parallel.wire.T_APPLY` message instead of touching a
  local server.  Applies are fire-and-forget, so the child's ingest CPU
  time overlaps the parent's simulation and the other shards' children.
* :class:`_shard_child_main` — the child loop.  It owns the real per-job
  servers, guards every (job, rank) stream with a
  :class:`~repro.runtime.seqtrack.SequenceTracker` over the front's
  dense sub-sequence numbers (redelivered frames are dropped, the PR 2
  discipline across the process boundary), and answers EXPORT queries
  with encoded row deltas for the query merger.

Crash/replay: the proxy spools every frame it ever sent.  When the
child dies (broken pipe on send, EOF on a query), the proxy respawns it
and replays the spool in order — the fresh child starts empty, so the
replay rebuilds the exact pre-crash state and every sequenced batch is
applied exactly once (``tests/parallel/test_procshard.py`` kills a
child mid-run and pins bit-identity).  ``parallel.worker_restart``
counts respawns.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.parallel.wire import (
    FrameConn,
    PeerDied,
    T_APPLY,
    T_EXPORT,
    T_EXPORT_ROWS,
    T_REGISTER,
    T_SHUTDOWN,
    pack_apply,
    pack_export_request,
    pack_export_rows,
    pack_register,
    socket_pair,
    unpack_apply,
    unpack_export_request,
    unpack_export_rows,
    unpack_register,
)
from repro.runtime.seqtrack import SequenceTracker
from repro.runtime.server import AnalysisServer
from repro.service.shard import ShardWorker, _QueuedBatch


@dataclass(frozen=True, slots=True)
class ShardServerConfig:
    """Everything a child needs to build one job's analysis server."""

    window_us: float = 200_000.0
    batch_period_us: float = 100_000.0
    threshold: float = 0.7
    engine: str = "columnar"


def _shard_child_main(conn: FrameConn, config: ShardServerConfig) -> None:  # pragma: no cover
    """Child loop: apply sequenced sub-batches, answer export queries.

    Runs only in forked children, so parent-side coverage cannot see it;
    every branch is exercised through the procshard tests' real children.
    """
    servers: dict[int, AnalysisServer] = {}
    job_ranks: dict[int, int] = {}
    trackers: dict[tuple[int, int], SequenceTracker] = {}

    def server_for(job: int, n_ranks: int) -> AnalysisServer:
        server = servers.get(job)
        if server is None:
            server = servers[job] = AnalysisServer(
                n_ranks=job_ranks.get(job, n_ranks),
                window_us=config.window_us,
                batch_period_us=config.batch_period_us,
                threshold=config.threshold,
                engine=config.engine,
            )
        return server

    while True:
        try:
            ftype, payload = conn.recv()
        except PeerDied:
            os._exit(0)
        if ftype == T_SHUTDOWN:
            conn.close()
            os._exit(0)
        elif ftype == T_REGISTER:
            job, n_ranks = unpack_register(payload)
            job_ranks[job] = n_ranks
        elif ftype == T_APPLY:
            job, rank, seq, n_ranks, rows = unpack_apply(payload)
            tracker = trackers.setdefault((job, rank), SequenceTracker())
            if not tracker.accept(seq):
                continue  # redelivered sub-batch: exactly-once effect
            # The front already sequenced this hop; the shard-local server
            # ingests without its own watermark (mirrors the in-process
            # worker, which passes seq through for identical accounting).
            server_for(job, n_ranks).receive_batch(rank, rows, seq=seq)
        elif ftype == T_EXPORT:
            job, cursor = unpack_export_request(payload)
            server = servers.get(job)
            if server is None:
                conn.send(T_EXPORT_ROWS, pack_export_rows(cursor, 0, []))
                continue
            rows, total = server.export_rows(cursor)
            conn.send(
                T_EXPORT_ROWS,
                pack_export_rows(total, server.duplicate_summaries, rows),
            )
        else:
            os._exit(1)


class _RemoteJobServer:
    """Parent-side stand-in for one job's shard-local server.

    Duck-types the two members the query merger reads —
    ``export_rows(cursor)`` and ``duplicate_summaries`` — by round-trip
    EXPORT frames to the shard child.  After the fabric closes, answers
    come from the last-synced cursor so late queries see a stable view.
    """

    def __init__(self, shard: "ProcessShardWorker", job: int) -> None:
        self._shard = shard
        self._job = job
        self.duplicate_summaries = 0
        self._last_total = 0

    def export_rows(self, start: int = 0):
        shard = self._shard
        if shard.closed:
            return [], self._last_total
        total, duplicates, rows = shard._export(self._job, start)
        self.duplicate_summaries = duplicates
        self._last_total = total
        return rows, total


@dataclass(slots=True)
class ProcessShardWorker(ShardWorker):
    """ShardWorker whose apply/query side lives in a child OS process."""

    config: ShardServerConfig = field(default_factory=ShardServerConfig)
    max_restarts: int = 2
    closed: bool = False
    #: respawns performed (mirrors the parallel.worker_restart counter)
    restarts: int = 0
    #: replay spool: every (type, payload) frame ever sent, in order
    _spool: list = field(default_factory=list)
    _conn: FrameConn | None = None
    _process: object | None = None
    #: declared rank count per job (REGISTER frames carry it to the child)
    _job_ranks: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._start()

    # -- child lifecycle ---------------------------------------------------

    def _start(self) -> None:
        frames = (
            self.metrics.counter("parallel.frames") if self.metrics is not None else None
        )
        parent, child = socket_pair(frames=frames)
        ctx = multiprocessing.get_context("fork" if hasattr(os, "fork") else "spawn")
        self._process = ctx.Process(
            target=_shard_child_main, args=(child, self.config), daemon=True
        )
        self._process.start()
        child.close()
        self._conn = parent

    def _restart(self) -> None:
        if self.restarts >= self.max_restarts:
            raise ReproError(
                f"shard {self.shard_id} child died {self.restarts + 1} times "
                f"(max_restarts={self.max_restarts}); giving up"
            )
        self.restarts += 1
        if self.metrics is not None:
            self.metrics.counter("parallel.worker_restart").inc()
        if self.obs is not None:
            with self.obs.tracer.span(
                f"parallel.shard.{self.shard_id}.restart"
            ) as span:
                span.set("replayed_frames", len(self._spool))
        self._conn.close()
        self._process.join(timeout=5.0)
        self._start()
        # Replay the spool into the fresh (empty) child.  Sequenced
        # sub-batches re-apply exactly once by construction: the child
        # lost all state, so the full history *is* the exactly-once set.
        for ftype, payload in self._spool:
            self._conn.send(ftype, payload)

    def _send(self, ftype: int, payload: bytes, spool: bool = True) -> None:
        if spool:
            self._spool.append((ftype, payload))
        while True:
            try:
                self._conn.send(ftype, payload)
                return
            except PeerDied:
                # _restart already replayed the spool (which, for
                # spooled frames, includes this one) — done.
                self._restart()
                if spool:
                    return

    def pid(self) -> int:
        """Live child PID (test/diagnostic surface)."""
        return self._process.pid

    def close(self) -> None:
        """Shut the child down; later queries answer from synced state."""
        if self.closed:
            return
        self.closed = True
        try:
            self._conn.send(T_SHUTDOWN)
        except PeerDied:
            pass
        self._conn.close()
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - stuck child
            self._process.terminate()
            self._process.join(timeout=5.0)

    # -- ShardWorker overrides ---------------------------------------------

    def register_job(self, job: int, n_ranks: int) -> None:
        """Declare a job's rank count ahead of its first batch."""
        self._job_ranks[job] = n_ranks
        self._send(T_REGISTER, pack_register(job, n_ranks))

    def _apply(self, batch: _QueuedBatch) -> float:
        if batch.job not in self.servers:
            self.servers[batch.job] = _RemoteJobServer(self, batch.job)
        n_ranks = self._job_ranks.get(batch.job, 0)
        payload = pack_apply(batch.job, batch.rank, batch.seq, n_ranks, batch.rows)
        if self.cost.measured:
            t0 = time.perf_counter()
            self._send(T_APPLY, payload)
            cost = (time.perf_counter() - t0) * 1e6
            self._avg_cost_us += 0.25 * (cost - self._avg_cost_us)
        else:
            self._send(T_APPLY, payload)
            cost = self.cost.estimate(len(batch.rows))
        self.applied_batches += 1
        self.applied_rows += len(batch.rows)
        if self.obs is not None:
            with self.obs.tracer.span(f"service.shard.{self.shard_id}.apply") as span:
                span.set("job", batch.job)
                span.set("rank", batch.rank)
                span.set("rows", len(batch.rows))
        if self.metrics is not None:
            self.metrics.counter(f"service.shard.{self.shard_id}.batches").inc()
            self.metrics.counter(f"service.shard.{self.shard_id}.rows").inc(
                len(batch.rows)
            )
        return cost

    # -- query plumbing ----------------------------------------------------

    def _export(self, job: int, cursor: int):
        """Synchronous EXPORT round-trip (retried across a restart)."""
        while True:
            self._send(T_EXPORT, pack_export_request(job, cursor), spool=False)
            try:
                ftype, payload = self._conn.recv()
            except PeerDied:
                self._restart()
                continue
            if ftype != T_EXPORT_ROWS:
                raise ReproError(
                    f"unexpected frame type {ftype} from shard {self.shard_id}"
                )
            return unpack_export_rows(payload, job=job)


class ProcessShardFabric:
    """Factory + registry of process-backed shards for one service run."""

    def __init__(self, *, max_restarts: int = 2) -> None:
        self.max_restarts = max_restarts
        self.shards: list[ProcessShardWorker] = []

    def shard(
        self,
        shard_id: int,
        *,
        queue_limit: int,
        cost,
        window_us: float,
        batch_period_us: float,
        threshold: float,
        engine: str,
        obs=None,
        metrics=None,
    ) -> ProcessShardWorker:
        worker = ProcessShardWorker(
            shard_id=shard_id,
            server_factory=_no_local_servers,
            queue_limit=queue_limit,
            cost=cost,
            obs=obs,
            metrics=metrics,
            config=ShardServerConfig(
                window_us=window_us,
                batch_period_us=batch_period_us,
                threshold=threshold,
                engine=engine,
            ),
            max_restarts=self.max_restarts,
        )
        self.shards.append(worker)
        return worker

    def register_job(self, job: int, n_ranks: int) -> None:
        for shard in self.shards:
            shard.register_job(job, n_ranks)

    def restarts(self) -> int:
        return sum(s.restarts for s in self.shards)

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ProcessShardFabric":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _no_local_servers(job: int) -> AnalysisServer:  # pragma: no cover
    raise ReproError("process-backed shards keep servers in the child process")
