"""Process-parallel execution fabric (ROADMAP: a real process boundary).

Two capabilities behind one framed wire protocol
(:mod:`repro.parallel.wire`):

* **Process shard workers** — :class:`ProcessShardFabric` puts each
  :class:`~repro.service.shard.ShardWorker`'s ingest side in a child OS
  process behind the existing consistent-hash router, with spool-replay
  crash recovery and bit-identical merged queries.
* **Parallel multi-job runner** — :func:`~repro.api.run_multi_job`
  ``workers=N`` fans independent job simulations onto a deterministic
  :class:`WorkerPool` of OS processes; results merge through the
  unchanged order-invariant query-merger path, bit-identical to the
  in-process run.

Observability: ``parallel.dispatch`` / ``parallel.results`` /
``parallel.frames`` / ``parallel.worker_restart`` counters plus
``parallel.phase1`` / ``parallel.dispatch`` spans, all on the parent's
bundle (children run null-obs; enabling obs never changes results).
"""

from repro.parallel.pool import WorkerPool, default_workers
from repro.parallel.procshard import (
    ProcessShardFabric,
    ProcessShardWorker,
    ShardServerConfig,
)
from repro.parallel.runner import JobTask, simulate_job, simulate_jobs_parallel
from repro.parallel.wire import (
    FrameConn,
    PeerDied,
    WireError,
    decode_rows,
    encode_rows,
    socket_pair,
)

__all__ = [
    "WorkerPool",
    "default_workers",
    "ProcessShardFabric",
    "ProcessShardWorker",
    "ShardServerConfig",
    "JobTask",
    "simulate_job",
    "simulate_jobs_parallel",
    "FrameConn",
    "PeerDied",
    "WireError",
    "encode_rows",
    "decode_rows",
    "socket_pair",
]
