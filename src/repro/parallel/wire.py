"""Length-prefixed framed wire protocol for the process fabric.

Every hop of :mod:`repro.parallel` — pool parent ↔ pool worker, shard
proxy ↔ shard child — speaks the same byte-stream protocol over a
connected ``AF_UNIX`` socket pair: a fixed frame header (payload length,
frame type, flags) followed by the payload.  Frames are the *only* unit
of exchange; a reader either gets a whole frame or, on a dead peer, a
clean EOF it can turn into a restart.

Batch payloads reuse the zero-copy structured-dtype technique of the
:mod:`repro.runtime.transport` spool codec: rows travel as one
``numpy`` structured array preceded by an interned group-string table,
and the decoder reconstructs them with a single ``np.frombuffer`` view
over the frame body.  Unlike the spool codec (whose ``f32`` durations
are fine for §6.4 volume accounting), the fabric carries every float at
full ``f64`` fidelity: the process boundary must be *bit-invisible* —
``decode_rows(encode_rows(rows))`` reproduces each
:class:`~repro.runtime.records.SliceSummary` exactly, which is what
makes the process-sharded matrices bit-identical to in-process ones.
"""

from __future__ import annotations

import pickle
import socket
import struct

import numpy as np

from repro.errors import ReproError
from repro.runtime.records import (
    CODE_SENSOR_TYPE,
    SENSOR_TYPE_CODE,
    SliceSummary,
    SummaryColumns,
)

#: frame header: payload length (u32), frame type (u16), flags (u16)
FRAME_HEADER = struct.Struct("<IHH")

#: hard ceiling on one frame's payload — a corrupt length prefix must
#: fail loudly instead of attempting a multi-GiB allocation
MAX_FRAME_BYTES = 256 * 1024 * 1024

# -- frame types ------------------------------------------------------------
#: pool parent -> worker: one pickled task (index, payload)
T_TASK = 1
#: pool worker -> parent: one pickled result (index, value)
T_RESULT = 2
#: pool worker -> parent: a task raised; payload is (index, traceback text)
T_ERROR = 3
#: either direction: orderly shutdown request
T_SHUTDOWN = 4
#: proxy -> shard child: apply one sequenced sub-batch
T_APPLY = 5
#: proxy -> shard child: export one job's rows from a cursor
T_EXPORT = 6
#: shard child -> proxy: export response
T_EXPORT_ROWS = 7
#: proxy -> shard child: declare one job's rank count before ingest
T_REGISTER = 8
#: shard child -> proxy: stats response (applied batches/rows)
T_STATS = 9

_APPLY_HEADER = struct.Struct("<IIIi")   # job, rank, seq, n_ranks
_EXPORT_REQ = struct.Struct("<II")       # job, cursor
_EXPORT_HEADER = struct.Struct("<III")   # total rows, duplicate_summaries, row count
_REGISTER_BODY = struct.Struct("<II")    # job, n_ranks
_GROUP_COUNT = struct.Struct("<H")
_GROUP_ENTRY = struct.Struct("<HH")      # code, utf-8 byte length
_ROW_COUNT = struct.Struct("<I")

#: one summary row at full fidelity (the spool codec's structured-dtype
#: trick, widened so the wire round-trip is exact)
ROW_DTYPE = np.dtype(
    [
        ("rank", "<u4"),
        ("sensor", "<u4"),
        ("type_code", "<u2"),
        ("group_code", "<u2"),
        ("slice", "<u8"),
        ("t_start", "<f8"),
        ("dur", "<f8"),
        ("count", "<u8"),
        ("miss", "<f8"),
    ]
)


class WireError(ReproError):
    """A malformed frame or oversized payload on a fabric connection."""


class PeerDied(ReproError):
    """The other end of a fabric connection is gone (EOF / broken pipe)."""


# ---------------------------------------------------------------------------
# framing over a connected socket
# ---------------------------------------------------------------------------


class FrameConn:
    """One end of a framed fabric connection.

    Thin wrapper over a connected stream socket: :meth:`send` writes one
    length-prefixed frame, :meth:`recv` blocks for the next whole frame.
    Both raise :class:`PeerDied` when the other process is gone, which
    is the signal the fabric turns into a worker restart.  The optional
    ``frames`` counter (an :class:`~repro.obs.metrics.Counter`) ticks
    once per frame in either direction — the ``parallel.frames`` metric.
    """

    def __init__(self, sock: socket.socket, frames=None) -> None:
        self.sock = sock
        self.frames = frames
        self._recv_buf = bytearray()

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, ftype: int, payload: bytes = b"") -> None:
        if len(payload) > MAX_FRAME_BYTES:
            raise WireError(f"frame payload too large ({len(payload)} bytes)")
        try:
            self.sock.sendall(FRAME_HEADER.pack(len(payload), ftype, 0) + payload)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise PeerDied(f"fabric peer died during send: {exc}") from exc
        if self.frames is not None:
            self.frames.inc()

    def _read_exact(self, n: int) -> bytes:
        buf = self._recv_buf
        while len(buf) < n:
            try:
                chunk = self.sock.recv(65536)
            except (ConnectionResetError, OSError) as exc:
                raise PeerDied(f"fabric peer died during recv: {exc}") from exc
            if not chunk:
                raise PeerDied("fabric peer closed the connection")
            buf.extend(chunk)
        out = bytes(buf[:n])
        del buf[:n]
        return out

    def has_buffered_frame(self) -> bool:
        """True if a whole frame is already in the userspace read buffer.

        ``_read_exact`` slurps up to 64 KiB per socket read, so one
        ``recv`` may buffer the *next* frames too.  A readiness poll
        (``select``/``epoll``) only sees the socket — callers multiplexing
        over many connections must drain buffered frames after every
        ``recv`` or they will block on a socket whose data has already
        been read (see :meth:`WorkerPool.run`'s collection loop).
        """
        buf = self._recv_buf
        if len(buf) < FRAME_HEADER.size:
            return False
        length, _ftype, _flags = FRAME_HEADER.unpack_from(buf, 0)
        return len(buf) >= FRAME_HEADER.size + length

    def recv(self) -> tuple[int, bytes]:
        """Block for the next whole frame; ``(type, payload)``."""
        header = self._read_exact(FRAME_HEADER.size)
        length, ftype, _flags = FRAME_HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise WireError(f"frame length {length} exceeds cap {MAX_FRAME_BYTES}")
        payload = self._read_exact(length) if length else b""
        if self.frames is not None:
            self.frames.inc()
        return ftype, payload

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def socket_pair(frames=None) -> tuple[FrameConn, FrameConn]:
    """A connected (parent, child) pair of framed connections."""
    a, b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
    return FrameConn(a, frames=frames), FrameConn(b)


# ---------------------------------------------------------------------------
# pickled payloads (pool tasks/results)
# ---------------------------------------------------------------------------


def pack_obj(obj) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_obj(payload: bytes):
    return pickle.loads(payload)


# ---------------------------------------------------------------------------
# batch row codec (structured dtype + interned group table)
# ---------------------------------------------------------------------------


def encode_rows(rows: list[SliceSummary]) -> bytes:
    """Encode summaries as [group table][row count][structured rows].

    The group table interns each distinct group string once per frame
    (frames are self-describing, so a replay into a freshly restarted
    worker needs no codec state).  Row order is preserved exactly.
    """
    codes: dict[str, int] = {}
    chunks: list[bytes] = []
    array = np.empty(len(rows), dtype=ROW_DTYPE)
    for i, s in enumerate(rows):
        code = codes.get(s.group)
        if code is None:
            code = codes[s.group] = len(codes)
            if code > 0xFFFF:
                raise WireError("row batch uses more than 65536 distinct groups")
        array[i] = (
            s.rank,
            s.sensor_id,
            SENSOR_TYPE_CODE[s.sensor_type],
            code,
            s.slice_index,
            s.t_slice_start,
            s.mean_duration,
            s.count,
            s.mean_cache_miss,
        )
    chunks.append(_GROUP_COUNT.pack(len(codes)))
    for group, code in codes.items():
        encoded = group.encode("utf-8")
        chunks.append(_GROUP_ENTRY.pack(code, len(encoded)))
        chunks.append(encoded)
    chunks.append(_ROW_COUNT.pack(len(rows)))
    chunks.append(array.tobytes())
    return b"".join(chunks)


def decode_rows(data: bytes, job: int = 0) -> list[SliceSummary]:
    """Decode one :func:`encode_rows` payload back into summaries.

    The row block is read with a single zero-copy ``np.frombuffer``
    view; per-rank runs are materialized through the same
    :class:`~repro.runtime.records.SummaryColumns` path the spool drain
    uses, so every field round-trips bit-exactly (all floats are f64 on
    the wire).
    """
    (n_groups,) = _GROUP_COUNT.unpack_from(data, 0)
    pos = _GROUP_COUNT.size
    groups: dict[int, str] = {}
    for _ in range(n_groups):
        code, length = _GROUP_ENTRY.unpack_from(data, pos)
        pos += _GROUP_ENTRY.size
        groups[code] = data[pos : pos + length].decode("utf-8")
        pos += length
    (n_rows,) = _ROW_COUNT.unpack_from(data, pos)
    pos += _ROW_COUNT.size
    expected = pos + n_rows * ROW_DTYPE.itemsize
    if len(data) < expected:
        raise WireError(
            f"truncated row block: need {expected} bytes, have {len(data)}"
        )
    array = np.frombuffer(data, dtype=ROW_DTYPE, count=n_rows, offset=pos)
    out: list[SliceSummary] = []
    start = 0
    while start < n_rows:
        rank = int(array["rank"][start])
        end = start + 1
        while end < n_rows and array["rank"][end] == rank:
            end += 1
        run = array[start:end]
        columns = SummaryColumns(
            rank=rank,
            sensor_id=run["sensor"],
            sensor_type_code=run["type_code"],
            group_code=run["group_code"],
            group_table=groups,
            slice_index=run["slice"],
            t_slice_start=run["t_start"],
            mean_duration=run["dur"],
            count=run["count"],
            mean_cache_miss=run["miss"],
            job=job,
        )
        out.extend(columns.to_summaries())
        start = end
    return out


# -- shard-hop payload helpers ----------------------------------------------


def pack_apply(job: int, rank: int, seq: int, n_ranks: int, rows: list[SliceSummary]) -> bytes:
    return _APPLY_HEADER.pack(job, rank, seq, n_ranks) + encode_rows(rows)


def unpack_apply(payload: bytes) -> tuple[int, int, int, int, list[SliceSummary]]:
    job, rank, seq, n_ranks = _APPLY_HEADER.unpack_from(payload, 0)
    rows = decode_rows(payload[_APPLY_HEADER.size :], job=job)
    return job, rank, seq, n_ranks, rows


def pack_export_request(job: int, cursor: int) -> bytes:
    return _EXPORT_REQ.pack(job, cursor)


def unpack_export_request(payload: bytes) -> tuple[int, int]:
    return _EXPORT_REQ.unpack(payload)


def pack_export_rows(total: int, duplicates: int, rows: list[SliceSummary]) -> bytes:
    return _EXPORT_HEADER.pack(total, duplicates, len(rows)) + encode_rows(rows)


def unpack_export_rows(payload: bytes, job: int = 0) -> tuple[int, int, list[SliceSummary]]:
    total, duplicates, _count = _EXPORT_HEADER.unpack_from(payload, 0)
    rows = decode_rows(payload[_EXPORT_HEADER.size :], job=job)
    return total, duplicates, rows


def pack_register(job: int, n_ranks: int) -> bytes:
    return _REGISTER_BODY.pack(job, n_ranks)


def unpack_register(payload: bytes) -> tuple[int, int]:
    return _REGISTER_BODY.unpack(payload)
