"""Deterministic OS-process worker pool for the execution fabric.

Tasks are assigned round-robin by index — task *i* always runs on
worker ``i % n_workers`` — so a run's work placement is a pure function
of the task list, never of scheduling jitter.  Results come back tagged
with their task index and are returned in task order, which makes the
pool transparent to any order-invariant (or order-restoring) consumer:
``run(tasks)`` with 4 workers returns exactly what 1 worker returns.

Crash recovery is spool-replay: the parent keeps every dispatched task
until its result lands.  When a worker dies (EOF on its connection or a
broken pipe), the parent restarts the process and replays that worker's
unfinished tasks *in their original dispatch order* — tasks are
deterministic functions, so a replayed task reproduces the lost result
and the effect is exactly-once per task index.  ``parallel.worker_restart``
counts every such respawn; a worker that keeps dying exhausts
``max_restarts`` and fails the run loudly.

The parent↔worker hop speaks the :mod:`repro.parallel.wire` framed
protocol over an ``AF_UNIX`` socket pair; task payloads and results are
pickled frames, and the callable itself must be a module-level function
(pickled by reference) so a respawned worker can always re-import it.
"""

from __future__ import annotations

import multiprocessing
import os
import selectors
import sys
import traceback
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError
from repro.obs import NULL_OBS, Obs
from repro.parallel.wire import (
    FrameConn,
    PeerDied,
    T_ERROR,
    T_RESULT,
    T_SHUTDOWN,
    T_TASK,
    pack_obj,
    socket_pair,
    unpack_obj,
)


def _pool_child_main(conn: FrameConn, fn: Callable) -> None:  # pragma: no cover
    """Worker loop: execute TASK frames until SHUTDOWN or parent death.

    Runs only in forked children, so parent-side coverage cannot see it;
    every branch is exercised through the pool tests' real subprocesses.
    """
    while True:
        try:
            ftype, payload = conn.recv()
        except PeerDied:
            os._exit(0)
        if ftype == T_SHUTDOWN:
            conn.close()
            os._exit(0)
        if ftype != T_TASK:
            os._exit(1)
        generation, index, task = unpack_obj(payload)
        try:
            result = fn(task)
        except BaseException:
            conn.send(T_ERROR, pack_obj((generation, index, traceback.format_exc())))
            continue
        conn.send(T_RESULT, pack_obj((generation, index, result)))


@dataclass(slots=True)
class _Worker:
    slot: int
    process: multiprocessing.process.BaseProcess
    conn: FrameConn
    #: dispatched-but-unfinished (index, payload-bytes), in dispatch order —
    #: the replay spool a restart re-sends
    outstanding: list = field(default_factory=list)
    restarts: int = 0

    @property
    def pid(self) -> int:
        return self.process.pid


class WorkerPool:
    """``n_workers`` persistent OS-process workers running one function.

    ``fn`` must be a module-level callable taking one picklable payload
    and returning a picklable result.  Use as a context manager or call
    :meth:`close` explicitly.
    """

    def __init__(
        self,
        n_workers: int,
        fn: Callable,
        *,
        obs: Obs | None = None,
        max_restarts: int = 2,
    ) -> None:
        if n_workers < 1:
            raise ReproError(f"need at least one worker (got {n_workers})")
        self.n_workers = n_workers
        self.fn = fn
        self.obs = obs or NULL_OBS
        self.max_restarts = max_restarts
        self._metrics = self.obs.metrics if self.obs.enabled else None
        self._frames = (
            self._metrics.counter("parallel.frames") if self._metrics is not None else None
        )
        self._ctx = multiprocessing.get_context(
            "fork" if hasattr(os, "fork") else "spawn"
        )
        self._workers: list[_Worker] = [self._spawn(slot) for slot in range(n_workers)]
        self._closed = False
        #: run generation — results are tagged with it so frames from an
        #: aborted run (a task error raises mid-collection) are dropped
        #: instead of polluting the next run's result table
        self._generation = 0

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self, slot: int) -> _Worker:
        parent, child = socket_pair(frames=self._frames)
        process = self._ctx.Process(
            target=_pool_child_main, args=(child, self.fn), daemon=True
        )
        process.start()
        child.close()
        return _Worker(slot=slot, process=process, conn=parent)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(T_SHUTDOWN)
            except PeerDied:
                pass
            worker.conn.close()
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5.0)

    def worker_pids(self) -> list[int]:
        """Live worker PIDs by slot (test/diagnostic surface)."""
        return [w.pid for w in self._workers]

    # -- crash recovery ----------------------------------------------------

    def _restart(self, worker: _Worker) -> _Worker:
        """Respawn one dead worker and replay its unfinished tasks."""
        if worker.restarts >= self.max_restarts:
            raise ReproError(
                f"pool worker {worker.slot} died {worker.restarts + 1} times "
                f"(max_restarts={self.max_restarts}); giving up"
            )
        worker.conn.close()
        worker.process.join(timeout=5.0)
        fresh = self._spawn(worker.slot)
        fresh.restarts = worker.restarts + 1
        fresh.outstanding = worker.outstanding
        self._workers[worker.slot] = fresh
        if self._metrics is not None:
            self._metrics.counter("parallel.worker_restart").inc()
        for index, payload in fresh.outstanding:
            fresh.conn.send(T_TASK, payload)
        return fresh

    # -- execution ---------------------------------------------------------

    def run(self, payloads: list) -> list:
        """Run every payload; results in task order.

        Dispatch is eager (every worker gets its whole round-robin share
        up front) and collection is a ``selectors`` loop over the worker
        connections, so slow and fast workers drain independently.
        """
        if self._closed:
            raise ReproError("pool is closed")
        self._generation += 1
        generation = self._generation
        n_tasks = len(payloads)
        results: dict[int, object] = {}
        for worker in self._workers:
            # Tasks stranded by an aborted previous run are abandoned;
            # their late results are dropped by the generation check.
            worker.outstanding = []
        with self.obs.tracer.span(
            "parallel.dispatch", tasks=n_tasks, workers=self.n_workers
        ):
            for index, payload in enumerate(payloads):
                worker = self._workers[index % self.n_workers]
                frame = pack_obj((generation, index, payload))
                worker.outstanding.append((index, frame))
                try:
                    worker.conn.send(T_TASK, frame)
                except PeerDied:
                    self._restart(worker)
                if self._metrics is not None:
                    self._metrics.counter("parallel.dispatch").inc()
        while len(results) < n_tasks:
            selector = selectors.DefaultSelector()
            for worker in self._workers:
                if worker.outstanding:
                    selector.register(worker.conn.fileno(), selectors.EVENT_READ, worker)
            try:
                events = selector.select()
            finally:
                selector.close()
            for key, _mask in events:
                worker = key.data
                # One socket read can buffer several coalesced frames,
                # and the selector only sees the *socket* — drain every
                # whole frame the read buffered, or the next select()
                # would block on data that is already in userspace.
                try:
                    frames = [worker.conn.recv()]
                    while worker.conn.has_buffered_frame():
                        frames.append(worker.conn.recv())
                except PeerDied:
                    self._restart(worker)
                    continue
                for ftype, payload in frames:
                    if ftype == T_ERROR:
                        gen, index, text = unpack_obj(payload)
                        if gen != generation:
                            continue  # stale frame from an aborted run
                        raise ReproError(
                            f"pool task {index} failed in worker {worker.slot}:\n{text}"
                        )
                    if ftype != T_RESULT:
                        raise ReproError(
                            f"unexpected frame type {ftype} from pool worker"
                        )
                    gen, index, value = unpack_obj(payload)
                    if gen != generation:
                        continue  # stale frame from an aborted run
                    results[index] = value
                    worker.outstanding = [
                        item for item in worker.outstanding if item[0] != index
                    ]
                    if self._metrics is not None:
                        self._metrics.counter("parallel.results").inc()
        return [results[i] for i in range(n_tasks)]


def default_workers() -> int:
    """A sensible worker count for this host (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


if sys.platform == "win32":  # pragma: no cover - POSIX-only fabric
    raise ImportError("repro.parallel requires a POSIX platform (AF_UNIX sockets)")
