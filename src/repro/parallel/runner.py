"""Parallel phase-1 of the multi-job runner: simulate jobs in processes.

:func:`~repro.api.run_multi_job` has four phases; only phase 1 (compile
+ simulate every job, recording timed batch sends) is CPU-bound per job
and embarrassingly parallel — phases 2–4 (globally time-ordered replay
through the sharded service, quiescence drive, merged reports) are a
deterministic function of phase 1's outputs.  So the fabric parallelizes
exactly phase 1: each :class:`~repro.api.JobSpec` becomes one task on
the deterministic :class:`~repro.parallel.pool.WorkerPool`, the worker
compiles and simulates it with a null obs bundle (observability is
behaviour-neutral, so the results are bit-identical to an instrumented
in-process run), and ships back ``(static, sim, runtime)`` — the
recorder with its timed batch events rides inside ``runtime.server``.
Merging then goes through the unchanged order-invariant
:class:`~repro.service.merge.QueryMerger` path, which is what makes
``workers=N`` bit-identical to ``workers=1`` by construction.

Workers optionally share a warm compile cache through an
:class:`~repro.pipeline.ArtifactStore` disk directory — safe under
concurrent writers since the store's atomic temp-file publication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.obs import NULL_OBS, Obs
from repro.parallel.pool import WorkerPool
from repro.runtime.detector import DetectorConfig


@dataclass(slots=True)
class JobTask:
    """One phase-1 unit of work, picklable for the pool hop."""

    job_id: int
    source: str
    machine: object
    faults: tuple
    detector: DetectorConfig | None
    rule: object | None
    engine: str
    max_depth: int
    batch_period_us: float
    #: optional shared on-disk compile-cache directory
    cache_dir: str | None = None


def simulate_job(task: JobTask):
    """Run one job's compile + simulate phase (pool worker entry point).

    Mirrors the in-process phase-1 loop of :func:`repro.api.run_multi_job`
    exactly: same recorder, same runtime construction, same simulator
    arguments.  Returns ``(static, sim, runtime)`` pickled as one payload
    so the ``static.program.sensors`` identity shared with the runtime
    survives the trip back.
    """
    from repro.api import _BatchRecorder, compile_and_instrument
    from repro.pipeline import ArtifactStore
    from repro.runtime.dynrules import NoGrouping
    from repro.runtime.vsensor_hooks import VSensorRuntime
    from repro.sim import Simulator

    store = (
        ArtifactStore(disk_dir=task.cache_dir) if task.cache_dir is not None else None
    )
    kwargs = {"store": store} if store is not None else {}
    static = compile_and_instrument(task.source, max_depth=task.max_depth, **kwargs)
    recorder = _BatchRecorder(task.batch_period_us)
    runtime = VSensorRuntime(
        sensors=static.program.sensors,
        n_ranks=task.machine.n_ranks,
        config=task.detector or DetectorConfig(),
        rule=task.rule or NoGrouping(),
        server=recorder,  # type: ignore[arg-type]
    )
    sim = Simulator(
        static.program.module,
        task.machine,
        faults=tuple(task.faults),
        sensors=static.program.sensors,
        engine=task.engine,
    ).run(runtime)
    return static, sim, runtime


def simulate_jobs_parallel(
    tasks: Sequence[JobTask],
    workers: int,
    *,
    obs: Obs | None = None,
    max_restarts: int = 2,
) -> list:
    """Fan phase-1 tasks out to ``workers`` processes; results in order.

    Each result is the ``(static, sim, runtime)`` triple of the task at
    the same index.  Placement, replay and result ordering come from the
    deterministic pool, so the caller's downstream phases see the exact
    sequence an in-process loop would have produced.
    """
    obs = obs or NULL_OBS
    with obs.tracer.span("parallel.phase1", jobs=len(tasks), workers=workers):
        with WorkerPool(
            workers, simulate_job, obs=obs, max_restarts=max_restarts
        ) as pool:
            return pool.run(list(tasks))
