"""High-level pipeline: the eight workflow steps in one call.

:func:`compile_and_instrument` covers the static module (steps 1–5);
:func:`run_vsensor` adds the dynamic module (steps 6–8) on the simulated
cluster and returns everything a study needs: identification results,
instrumentation plan, simulation outcome, and the variance report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.frontend import Module, parse_source
from repro.instrument import InstrumentationPlan, InstrumentedProgram, instrument_module, select_sensors
from repro.runtime.detector import DetectorConfig
from repro.runtime.dynrules import DynamicRule, NoGrouping
from repro.runtime.report import VarianceReport
from repro.runtime.vsensor_hooks import VSensorRuntime
from repro.sensors import IdentificationResult, identify_vsensors
from repro.sensors.extern import ExternRegistry
from repro.sim import Fault, MachineConfig, SimResult, Simulator


@dataclass(slots=True)
class StaticResult:
    """Outcome of the static module (compile-time steps 1-5)."""

    module: Module
    identification: IdentificationResult
    plan: InstrumentationPlan
    program: InstrumentedProgram

    @property
    def source(self) -> str:
        return self.program.source


@dataclass(slots=True)
class VSensorRun:
    """Outcome of a full vSensor-instrumented simulated run."""

    static: StaticResult
    sim: SimResult
    runtime: VSensorRuntime
    report: VarianceReport = field(default=None)  # type: ignore[assignment]
    #: delivery counters when the run used a simulated lossy channel
    channel_stats: dict[str, int] | None = None


def compile_and_instrument(
    source: str,
    max_depth: int = 3,
    externs: ExternRegistry | None = None,
    static_rules: Sequence | Iterable = (),
    filename: str = "<program>",
    min_estimated_work: float = 0.0,
    annotations=None,
) -> StaticResult:
    """Run the static module on program text.

    ``min_estimated_work`` enables the compile-time granularity estimate
    (skip sensors predicted smaller than this many work units);
    ``annotations`` is an optional
    :class:`~repro.instrument.annotations.Annotations` with manual
    include/exclude marks.
    """
    module = parse_source(source, filename=filename)
    identification = identify_vsensors(module, externs=externs, static_rules=static_rules)
    if annotations is not None:
        from repro.instrument.annotations import apply_annotations

        apply_annotations(identification, annotations)
    plan = select_sensors(
        identification, max_depth=max_depth, min_estimated_work=min_estimated_work
    )
    program = instrument_module(module, plan.selected)
    return StaticResult(
        module=module, identification=identification, plan=plan, program=program
    )


def run_vsensor(
    source: str,
    machine: MachineConfig,
    faults: Sequence[Fault] = (),
    max_depth: int = 3,
    detector: DetectorConfig | None = None,
    rule: DynamicRule | None = None,
    externs: ExternRegistry | None = None,
    static_rules: Sequence | Iterable = (),
    window_us: float = 200_000.0,
    batch_period_us: float = 100_000.0,
    extra_hooks: Sequence = (),
    live=None,
    engine: str = "bytecode",
    channel=None,
    retry_policy=None,
) -> VSensorRun:
    """Compile, instrument, simulate and analyze one program.

    ``window_us`` is the performance-matrix time resolution (the paper's
    matrices use 200 ms); ``batch_period_us`` is how often each rank ships
    its buffered slice summaries to the analysis server.  ``extra_hooks``
    are additional observers teed alongside the vSensor runtime (e.g. a
    raw-record collector for figure data).

    ``channel`` routes rank→server batches over a simulated unreliable
    channel: pass a :class:`~repro.runtime.channel.ChannelConfig`, a
    prebuilt :class:`~repro.runtime.channel.LossyChannel`, or a CLI-style
    spec string (``"drop=0.1,dup=0.05"``, ``"lossy"``).  Delivery then
    uses sequence numbers + retries (``retry_policy``) with idempotent
    server ingest, and the run's :attr:`VSensorRun.channel_stats` /
    report fields expose the delivery counters.
    """
    from repro.runtime.channel import ChannelConfig, LossyChannel
    from repro.runtime.server import AnalysisServer
    from repro.runtime.transport import ReliableTransport, RetryPolicy
    from repro.sim.hooks import TeeHooks

    static = compile_and_instrument(
        source, max_depth=max_depth, externs=externs, static_rules=static_rules
    )
    server = AnalysisServer(
        n_ranks=machine.n_ranks,
        window_us=window_us,
        batch_period_us=batch_period_us,
    )
    runtime = VSensorRuntime(
        sensors=static.program.sensors,
        n_ranks=machine.n_ranks,
        config=detector or DetectorConfig(),
        rule=rule or NoGrouping(),
        server=server,
    )
    transport = None
    if channel is not None:
        if isinstance(channel, str):
            channel = ChannelConfig.parse(channel)
        if isinstance(channel, ChannelConfig):
            channel = LossyChannel(config=channel)
        transport = ReliableTransport(
            server=server, channel=channel, policy=retry_policy or RetryPolicy()
        )
        runtime.server = transport  # type: ignore[assignment]
    runtime.live = live
    hooks = TeeHooks(runtime, *extra_hooks) if extra_hooks else runtime
    sim = Simulator(
        static.program.module,
        machine,
        faults=tuple(faults),
        sensors=static.program.sensors,
        externs=externs,
        engine=engine,
    ).run(hooks)
    run = VSensorRun(static=static, sim=sim, runtime=runtime)
    if transport is not None:
        transport.finish()
        runtime.server = server
        run.channel_stats = transport.channel.stats.as_dict()
    run.report = runtime.report(sim.total_time)
    if run.channel_stats is not None:
        run.report.channel_stats = dict(run.channel_stats)
    return run


def run_uninstrumented(
    source: str,
    machine: MachineConfig,
    faults: Sequence[Fault] = (),
    engine: str = "bytecode",
) -> SimResult:
    """Simulate the original (probe-free) program — the overhead baseline."""
    module = parse_source(source)
    return Simulator(module, machine, faults=tuple(faults), engine=engine).run()
