"""High-level pipeline: the eight workflow steps in one call.

:func:`compile_and_instrument` covers the static module (steps 1–5), now
executed through the :mod:`repro.pipeline` pass manager: parse → lower →
cfa → dataflow → identify → select → instrument, with per-pass timing and
content-addressed artifact caching (repeat compiles of unchanged text and
config reuse every stage).  :func:`run_vsensor` adds the dynamic module
(steps 6–8) on the simulated cluster and returns everything a study needs:
identification results, instrumentation plan, simulation outcome, and the
variance report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.diagnostics import Diagnostic
from repro.errors import ReproError
from repro.frontend import Module, parse_source
from repro.instrument import InstrumentationPlan, InstrumentedProgram
from repro.obs import NULL_OBS, Obs
from repro.pipeline import (
    ArtifactStore,
    CompilerContext,
    PipelineProfile,
    default_store,
    static_pass_manager,
)
from repro.runtime.detector import DetectorConfig
from repro.runtime.dynrules import DynamicRule, NoGrouping
from repro.runtime.report import VarianceReport
from repro.runtime.vsensor_hooks import VSensorRuntime
from repro.sensors import IdentificationResult
from repro.sensors.extern import ExternRegistry
from repro.sim import Fault, MachineConfig, SimResult, Simulator

#: sentinel: "use the process-wide default artifact store"
_DEFAULT_STORE = object()


@dataclass(slots=True)
class StaticResult:
    """Outcome of the static module (compile-time steps 1-5)."""

    module: Module
    identification: IdentificationResult
    plan: InstrumentationPlan
    program: InstrumentedProgram
    #: structured rejection/skip notes from identify, select and instrument
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: per-pass wall time and cache hit/miss accounting for this compile
    profile: PipelineProfile = field(default_factory=PipelineProfile)

    @property
    def source(self) -> str:
        return self.program.source


@dataclass(slots=True)
class VSensorRun:
    """Outcome of a full vSensor-instrumented simulated run."""

    static: StaticResult
    sim: SimResult
    runtime: VSensorRuntime
    report: VarianceReport | None = None
    #: delivery counters when the run used a simulated lossy channel
    channel_stats: dict[str, int] | None = None
    #: the :class:`~repro.history.RunRecord` appended to the cross-run
    #: history store (seq assigned), when ``history_store`` was given
    history_entry: object | None = None


def compile_and_instrument(
    source: str,
    max_depth: int = 3,
    externs: ExternRegistry | None = None,
    static_rules: Sequence | Iterable = (),
    filename: str = "<program>",
    min_estimated_work: float = 0.0,
    annotations=None,
    store: ArtifactStore | None | object = _DEFAULT_STORE,
    obs: Obs | None = None,
) -> StaticResult:
    """Run the static module on program text.

    ``min_estimated_work`` enables the compile-time granularity estimate
    (skip sensors predicted smaller than this many work units);
    ``annotations`` is an optional
    :class:`~repro.instrument.annotations.Annotations` with manual
    include/exclude marks.

    ``store`` selects the artifact cache: by default the process-wide
    store (so recompiling unchanged text is nearly free), an explicit
    :class:`~repro.pipeline.ArtifactStore` for scoped/on-disk caching, or
    ``None`` to disable caching for this call.

    ``obs`` attaches an observability bundle (:mod:`repro.obs`): per-pass
    spans and cache counters are emitted into it.  The default is the
    no-op bundle; enabling it never changes outputs or cache keys.
    """
    if store is _DEFAULT_STORE:
        store = default_store()
    obs = obs or NULL_OBS
    ctx = CompilerContext(
        source=source,
        filename=filename,
        config={
            "max_depth": max_depth,
            "externs": externs,
            "static_rules": tuple(static_rules),
            "min_estimated_work": min_estimated_work,
            "annotations": annotations,
        },
        store=store,  # type: ignore[arg-type]
        obs=obs,
    )
    with obs.tracer.span("vsensor.compile"):
        static_pass_manager().run(ctx)
    selection = ctx.artifact("select")
    program: InstrumentedProgram = ctx.artifact("instrument")
    identification: IdentificationResult = selection.identification
    diagnostics = (
        identification.diagnostics()
        + selection.plan.diagnostics
        + program.diagnostics
    )
    return StaticResult(
        module=program.module,
        identification=identification,
        plan=selection.plan,
        program=program,
        diagnostics=diagnostics,
        profile=ctx.profile,
    )


def _resolve_governor(
    governor, overhead_budget, governor_policy, machine, static,
    detector_config, metrics, obs,
):
    """Build an :class:`~repro.runtime.governor.OverheadGovernor` from the
    user-facing knobs; ``None`` (all knobs unset) means no governor."""
    from repro.runtime.governor import GovernorConfig, OverheadGovernor

    if governor is None and overhead_budget is None and governor_policy is None:
        return None
    if isinstance(governor, OverheadGovernor):
        return governor
    if isinstance(governor, GovernorConfig):
        config = governor
    else:
        if isinstance(governor, str) and governor_policy is None:
            governor_policy = governor
        kwargs = {"eval_period_us": detector_config.slice_us}
        if overhead_budget is not None:
            kwargs["overhead_budget"] = overhead_budget
        if governor_policy is not None:
            kwargs["policy"] = governor_policy
        config = GovernorConfig(**kwargs)
    return OverheadGovernor(
        config,
        estimates=static.plan.estimates,
        probe_cost=machine.probe_cost,
        detector_config=detector_config,
        ranks_per_node=machine.ranks_per_node,
        metrics=metrics,
        obs=obs,
    )


def run_vsensor(
    source: str,
    machine: MachineConfig,
    faults: Sequence[Fault] = (),
    max_depth: int = 3,
    detector: DetectorConfig | None = None,
    rule: DynamicRule | None = None,
    externs: ExternRegistry | None = None,
    static_rules: Sequence | Iterable = (),
    window_us: float = 200_000.0,
    batch_period_us: float = 100_000.0,
    extra_hooks: Sequence = (),
    live=None,
    engine: str = "bytecode",
    analysis_engine: str = "columnar",
    channel=None,
    retry_policy=None,
    store: ArtifactStore | None | object = _DEFAULT_STORE,
    obs: Obs | None = None,
    governor=None,
    overhead_budget: float | None = None,
    governor_policy: str | None = None,
    history_store=None,
    history_label: str = "",
    history_workload: str = "",
) -> VSensorRun:
    """Compile, instrument, simulate and analyze one program.

    ``window_us`` is the performance-matrix time resolution (the paper's
    matrices use 200 ms); ``batch_period_us`` is how often each rank ships
    its buffered slice summaries to the analysis server.  ``extra_hooks``
    are additional observers teed alongside the vSensor runtime (e.g. a
    raw-record collector for figure data).

    ``channel`` routes rank→server batches over a simulated unreliable
    channel: pass a :class:`~repro.runtime.channel.ChannelConfig`, a
    prebuilt :class:`~repro.runtime.channel.LossyChannel`, or a CLI-style
    spec string (``"drop=0.1,dup=0.05"``, ``"lossy"``).  Delivery then
    uses sequence numbers + retries (``retry_policy``) with idempotent
    server ingest, and the run's :attr:`VSensorRun.channel_stats` /
    report fields expose the delivery counters.

    ``analysis_engine`` selects the server's analysis data path:
    ``"columnar"`` (default; vectorized store with incremental canonical
    replay) or ``"reference"`` (the original object-at-a-time replay) —
    the two are bit-identical, the reference tier exists for differential
    testing.

    ``engine`` selects the simulator's interpreter tier: ``"bytecode"``
    (default; compiled register VM), ``"ast"`` (tree-walking reference),
    ``"lockstep"`` (SIMD-over-ranks vectorized VM — one fetch per
    instruction applied to every rank's lane at once, with diverging ranks
    drained onto per-rank interpreters) or ``"auto"`` (bytecode below
    :data:`~repro.sim.AUTO_LOCKSTEP_MIN_RANKS` ranks, lockstep at or
    above — the crossover measured in ``BENCH_interp.json``, where
    lockstep is a slowdown at 8 ranks but wins from 32 up).  All tiers
    are bit-identical; ``"auto"`` is the recommended setting for runs
    whose rank counts vary.

    ``store`` is forwarded to :func:`compile_and_instrument`.

    ``obs`` attaches an observability bundle (:mod:`repro.obs`): compile /
    simulate / analyze phase spans, per-rank virtual-time spans, and
    record / retry / dedup counters across the runtime.  The default is
    the no-op bundle; an enabled bundle never changes the report, the
    matrices, or any cached artifact (the golden suite asserts this).

    ``governor`` installs the runtime overhead governor
    (:mod:`repro.runtime.governor`): pass a
    :class:`~repro.runtime.governor.GovernorConfig`, a policy name
    (``"adaptive"`` / ``"paper-shutoff"``), or leave ``None`` and set
    ``overhead_budget`` and/or ``governor_policy`` instead.  All three
    ``None`` (the default) installs no governor — every engine tier is
    bit-identical to the ungoverned historical behavior.

    ``history_store`` appends this run's sensor baselines to a cross-run
    regression history (:mod:`repro.history`): pass a
    :class:`~repro.history.RunStore` or a directory path.  The trajectory
    key is a content fingerprint of (source, machine, detector, engine,
    max_depth), so only bit-identical configurations share a history;
    ``history_label`` / ``history_workload`` annotate the record.  The
    appended record lands in :attr:`VSensorRun.history_entry`.
    """
    from repro.runtime.channel import ChannelConfig, LossyChannel
    from repro.runtime.server import AnalysisServer
    from repro.runtime.transport import ReliableTransport, RetryPolicy
    from repro.sim.hooks import TeeHooks

    obs = obs or NULL_OBS
    metrics = obs.metrics if obs.enabled else None
    static = compile_and_instrument(
        source,
        max_depth=max_depth,
        externs=externs,
        static_rules=static_rules,
        store=store,
        obs=obs,
    )
    server = AnalysisServer(
        n_ranks=machine.n_ranks,
        window_us=window_us,
        batch_period_us=batch_period_us,
        engine=analysis_engine,
        metrics=metrics,
        obs=obs if obs.enabled else None,
    )
    detector_config = detector or DetectorConfig()
    gov = _resolve_governor(
        governor, overhead_budget, governor_policy, machine, static,
        detector_config, metrics, obs,
    )
    runtime = VSensorRuntime(
        sensors=static.program.sensors,
        n_ranks=machine.n_ranks,
        config=detector_config,
        rule=rule or NoGrouping(),
        server=server,
        obs=obs,
        governor=gov,
    )
    transport = None
    if channel is not None:
        if isinstance(channel, str):
            channel = ChannelConfig.parse(channel)
        if isinstance(channel, ChannelConfig):
            channel = LossyChannel(config=channel)
        transport = ReliableTransport(
            server=server,
            channel=channel,
            policy=retry_policy or RetryPolicy(),
            metrics=metrics,
        )
        runtime.server = transport  # type: ignore[assignment]
    runtime.live = live
    hooks = TeeHooks(runtime, *extra_hooks) if extra_hooks else runtime
    with obs.tracer.span("vsensor.simulate", engine=engine):
        sim = Simulator(
            static.program.module,
            machine,
            faults=tuple(faults),
            sensors=static.program.sensors,
            externs=externs,
            engine=engine,
            obs=obs,
            probe_control=gov.control if gov is not None else None,
        ).run(hooks)
    run = VSensorRun(static=static, sim=sim, runtime=runtime)
    with obs.tracer.span("vsensor.analyze"):
        if transport is not None:
            transport.finish()
            runtime.server = server
            run.channel_stats = transport.channel.stats.as_dict()
        run.report = runtime.report(sim.total_time)
    if run.channel_stats is not None:
        run.report.channel_stats = dict(run.channel_stats)
    if history_store is not None:
        from repro.history import RunStore, record_from_run, run_fingerprint

        if not isinstance(history_store, RunStore):
            history_store = RunStore(history_store)
        key = run_fingerprint(
            source,
            machine,
            detector_config,
            engine=engine,
            max_depth=max_depth,
        )
        with obs.tracer.span("history.append", fingerprint=key[:12]):
            run.history_entry = history_store.append(
                record_from_run(
                    run, key, label=history_label, workload=history_workload
                )
            )
            if obs.enabled:
                obs.metrics.counter("history.appends").inc()
    return run


@dataclass(slots=True)
class JobSpec:
    """One tenant of a multi-job sharded-service run."""

    source: str
    machine: MachineConfig
    #: tenant id; defaults to the job's position in the list
    job_id: int | None = None
    faults: Sequence[Fault] = ()
    #: per-job rank->front channel (spec string / config / channel);
    #: ``None`` uses a perfect zero-delay channel — delivery still runs
    #: the sequenced transport so admission rejections stay retriable
    channel: object | None = None
    retry_policy: object | None = None
    detector: DetectorConfig | None = None
    rule: DynamicRule | None = None
    engine: str = "bytecode"
    max_depth: int = 3


@dataclass(slots=True)
class JobRun:
    """One tenant's outcome of a multi-job run."""

    job_id: int
    static: StaticResult
    sim: SimResult
    runtime: VSensorRuntime
    report: VarianceReport | None = None
    channel_stats: dict[str, int] | None = None


@dataclass(slots=True)
class MultiJobRun:
    """Outcome of :func:`run_multi_job`: the service plus per-job results."""

    service: object
    jobs: dict[int, JobRun] = field(default_factory=dict)
    #: the :class:`~repro.parallel.ProcessShardFabric` behind the service
    #: when the run used ``shard_processes=True`` (closed by the time the
    #: run returns; exposes ``restarts()`` for crash-recovery accounting)
    fabric: object | None = None


class _BatchRecorder:
    """Duck-typed server capturing each rank's batch sends with times."""

    def __init__(self, batch_period_us: float) -> None:
        self.batch_period_us = batch_period_us
        self.events: list[tuple[float, int, list]] = []

    def send_batch(self, rank: int, summaries: list, now: float) -> None:
        self.events.append((now, rank, list(summaries)))


def run_multi_job(
    jobs: Sequence[JobSpec],
    n_shards: int = 4,
    window_us: float = 200_000.0,
    batch_period_us: float = 100_000.0,
    queue_limit: int = 64,
    cost=None,
    analysis_engine: str = "columnar",
    vnodes: int = 64,
    store: ArtifactStore | None | object = _DEFAULT_STORE,
    obs: Obs | None = None,
    workers: int = 1,
    shard_processes: bool = False,
    max_restarts: int = 2,
) -> MultiJobRun:
    """Run several jobs concurrently through one sharded analysis service.

    Each job is compiled and simulated exactly as :func:`run_vsensor`
    would, but its rank batches — captured with their virtual send times —
    are replayed interleaved across all jobs (globally time-ordered) into
    a shared :class:`~repro.service.AnalysisService`: per-job
    :class:`~repro.runtime.transport.ReliableTransport` instances carry
    the sequenced batches over each job's channel into the admission-
    controlled front, which routes them onto ``n_shards`` consistent-hash
    shard workers.  Every job's report/matrices are then answered by the
    service's per-job query merger — bit-identical to what an unsharded
    run of that job alone would produce.

    ``cost`` is an optional :class:`~repro.service.ShardCostModel` giving
    shards a virtual processing cost (that is what makes bounded queues
    fill and back-pressure engage); the default is zero cost.

    ``workers`` fans the compile+simulate phase out to that many OS
    processes on the deterministic :class:`~repro.parallel.WorkerPool`
    (:mod:`repro.parallel`); only phase 1 is parallel — the time-ordered
    replay, back-pressure drive and merged reports are a deterministic
    function of its outputs, so ``workers=N`` is bit-identical to
    ``workers=1``.  When the run's artifact ``store`` has an on-disk
    layer, workers share it as a warm compile cache.

    ``shard_processes=True`` additionally puts each shard worker's ingest
    side in a child OS process (:class:`~repro.parallel.
    ProcessShardFabric`), speaking the framed fabric wire protocol;
    admission arithmetic stays in the parent so back-pressure behaviour —
    and every merged query — is bit-identical to in-process shards.
    ``max_restarts`` bounds crash/replay respawns per worker or shard.
    """
    from repro.runtime.channel import ChannelConfig, LossyChannel, perfect_channel
    from repro.runtime.transport import ReliableTransport, RetryPolicy
    from repro.service import AnalysisService

    obs = obs or NULL_OBS
    fabric = None
    if shard_processes:
        from repro.parallel import ProcessShardFabric

        fabric = ProcessShardFabric(max_restarts=max_restarts)
    service = AnalysisService(
        n_shards,
        window_us=window_us,
        batch_period_us=batch_period_us,
        engine=analysis_engine,
        queue_limit=queue_limit,
        cost=cost,
        vnodes=vnodes,
        obs=obs if obs.enabled else None,
        fabric=fabric,
    )
    run = MultiJobRun(service=service, fabric=fabric)
    recorders: dict[int, _BatchRecorder] = {}
    transports: dict[int, ReliableTransport] = {}
    specs: dict[int, JobSpec] = {}

    # Phase 1: compile + simulate every job, capturing timed batch sends.
    job_ids: list[int] = []
    for index, spec in enumerate(jobs):
        job_id = index if spec.job_id is None else spec.job_id
        if job_id in job_ids:
            raise ReproError(f"duplicate job id {job_id}")
        job_ids.append(job_id)
    if workers > 1:
        from repro.parallel.runner import JobTask, simulate_jobs_parallel

        resolved_store = default_store() if store is _DEFAULT_STORE else store
        cache_dir = (
            str(resolved_store.disk_dir)
            if isinstance(resolved_store, ArtifactStore)
            and resolved_store.disk_dir is not None
            else None
        )
        tasks = [
            JobTask(
                job_id=job_id,
                source=spec.source,
                machine=spec.machine,
                faults=tuple(spec.faults),
                detector=spec.detector,
                rule=spec.rule,
                engine=spec.engine,
                max_depth=spec.max_depth,
                batch_period_us=batch_period_us,
                cache_dir=cache_dir,
            )
            for job_id, spec in zip(job_ids, jobs)
        ]
        outcomes = simulate_jobs_parallel(
            tasks, workers, obs=obs, max_restarts=max_restarts
        )
        for job_id, spec, outcome in zip(job_ids, jobs, outcomes):
            static, sim, runtime = outcome
            recorders[job_id] = runtime.server  # the _BatchRecorder
            specs[job_id] = spec
            run.jobs[job_id] = JobRun(
                job_id=job_id, static=static, sim=sim, runtime=runtime
            )
    else:
        for job_id, spec in zip(job_ids, jobs):
            static = compile_and_instrument(
                spec.source, max_depth=spec.max_depth, store=store, obs=obs
            )
            recorder = _BatchRecorder(batch_period_us)
            runtime = VSensorRuntime(
                sensors=static.program.sensors,
                n_ranks=spec.machine.n_ranks,
                config=spec.detector or DetectorConfig(),
                rule=spec.rule or NoGrouping(),
                server=recorder,  # type: ignore[arg-type]
                obs=obs,
            )
            with obs.tracer.span("vsensor.simulate", engine=spec.engine, job=job_id):
                sim = Simulator(
                    static.program.module,
                    spec.machine,
                    faults=tuple(spec.faults),
                    sensors=static.program.sensors,
                    engine=spec.engine,
                    obs=obs,
                ).run(runtime)
            recorders[job_id] = recorder
            specs[job_id] = spec
            run.jobs[job_id] = JobRun(
                job_id=job_id, static=static, sim=sim, runtime=runtime
            )

    # Phase 2: replay all jobs' batches, globally time-ordered, through
    # per-job sequenced transports into the shared sharded front.
    metrics = obs.metrics if obs.enabled else None
    for job_id, job_run in run.jobs.items():
        spec = specs[job_id]
        port = service.register_job(job_id, job_run.runtime.n_ranks)
        channel = spec.channel
        if channel is None:
            channel = perfect_channel()
        elif isinstance(channel, str):
            channel = ChannelConfig.parse(channel)
        if isinstance(channel, ChannelConfig):
            channel = LossyChannel(config=channel)
        transports[job_id] = ReliableTransport(
            server=port,  # type: ignore[arg-type]
            channel=channel,
            policy=spec.retry_policy or RetryPolicy(),
            metrics=metrics,
            job_id=job_id,
        )
    timeline = sorted(
        (
            (now, job_id, order, rank, rows)
            for job_id, recorder in recorders.items()
            for order, (now, rank, rows) in enumerate(recorder.events)
        ),
        key=lambda item: (item[0], item[1], item[2]),
    )
    with obs.tracer.span("service.ingest", jobs=len(run.jobs), shards=n_shards):
        for now, job_id, _, rank, rows in timeline:
            transports[job_id].send_batch(rank, rows, now)
            service.pump(now)

        # Phase 3: drive retries/back-pressure to quiescence, keeping the
        # shards pumping so deferred retries always find freed capacity.
        while True:
            targets = [
                due
                for transport in transports.values()
                if (due := transport.channel.next_due()) is not None
            ]
            targets.extend(
                pending.next_retry_at
                for transport in transports.values()
                for pending in transport._pending.values()
            )
            if not targets:
                break
            t = min(targets)
            service.pump(t)
            for transport in transports.values():
                transport.pump(t)
        service.finish()

    # Phase 4: per-job reports answered by the merged per-job view.
    for job_id, job_run in run.jobs.items():
        port = service.ports[job_id]
        job_run.runtime.server = port  # type: ignore[assignment]
        with obs.tracer.span("vsensor.analyze", job=job_id):
            job_run.report = job_run.runtime.report(job_run.sim.total_time)
        job_run.channel_stats = transports[job_id].channel.stats.as_dict()
        job_run.report.channel_stats = dict(job_run.channel_stats)
    # Process-backed shards are done once every report is answered: sync
    # the merged views and shut the children down.  Later queries against
    # the returned service answer from the synced merge state.
    service.close()
    return run


def run_uninstrumented(
    source: str,
    machine: MachineConfig,
    faults: Sequence[Fault] = (),
    engine: str = "bytecode",
) -> SimResult:
    """Simulate the original (probe-free) program — the overhead baseline."""
    module = parse_source(source)
    return Simulator(module, machine, faults=tuple(faults), engine=engine).run()
