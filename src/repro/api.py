"""High-level pipeline: the eight workflow steps in one call.

:func:`compile_and_instrument` covers the static module (steps 1–5), now
executed through the :mod:`repro.pipeline` pass manager: parse → lower →
cfa → dataflow → identify → select → instrument, with per-pass timing and
content-addressed artifact caching (repeat compiles of unchanged text and
config reuse every stage).  :func:`run_vsensor` adds the dynamic module
(steps 6–8) on the simulated cluster and returns everything a study needs:
identification results, instrumentation plan, simulation outcome, and the
variance report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.diagnostics import Diagnostic
from repro.frontend import Module, parse_source
from repro.instrument import InstrumentationPlan, InstrumentedProgram
from repro.obs import NULL_OBS, Obs
from repro.pipeline import (
    ArtifactStore,
    CompilerContext,
    PipelineProfile,
    default_store,
    static_pass_manager,
)
from repro.runtime.detector import DetectorConfig
from repro.runtime.dynrules import DynamicRule, NoGrouping
from repro.runtime.report import VarianceReport
from repro.runtime.vsensor_hooks import VSensorRuntime
from repro.sensors import IdentificationResult
from repro.sensors.extern import ExternRegistry
from repro.sim import Fault, MachineConfig, SimResult, Simulator

#: sentinel: "use the process-wide default artifact store"
_DEFAULT_STORE = object()


@dataclass(slots=True)
class StaticResult:
    """Outcome of the static module (compile-time steps 1-5)."""

    module: Module
    identification: IdentificationResult
    plan: InstrumentationPlan
    program: InstrumentedProgram
    #: structured rejection/skip notes from identify, select and instrument
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: per-pass wall time and cache hit/miss accounting for this compile
    profile: PipelineProfile = field(default_factory=PipelineProfile)

    @property
    def source(self) -> str:
        return self.program.source


@dataclass(slots=True)
class VSensorRun:
    """Outcome of a full vSensor-instrumented simulated run."""

    static: StaticResult
    sim: SimResult
    runtime: VSensorRuntime
    report: VarianceReport | None = None
    #: delivery counters when the run used a simulated lossy channel
    channel_stats: dict[str, int] | None = None


def compile_and_instrument(
    source: str,
    max_depth: int = 3,
    externs: ExternRegistry | None = None,
    static_rules: Sequence | Iterable = (),
    filename: str = "<program>",
    min_estimated_work: float = 0.0,
    annotations=None,
    store: ArtifactStore | None | object = _DEFAULT_STORE,
    obs: Obs | None = None,
) -> StaticResult:
    """Run the static module on program text.

    ``min_estimated_work`` enables the compile-time granularity estimate
    (skip sensors predicted smaller than this many work units);
    ``annotations`` is an optional
    :class:`~repro.instrument.annotations.Annotations` with manual
    include/exclude marks.

    ``store`` selects the artifact cache: by default the process-wide
    store (so recompiling unchanged text is nearly free), an explicit
    :class:`~repro.pipeline.ArtifactStore` for scoped/on-disk caching, or
    ``None`` to disable caching for this call.

    ``obs`` attaches an observability bundle (:mod:`repro.obs`): per-pass
    spans and cache counters are emitted into it.  The default is the
    no-op bundle; enabling it never changes outputs or cache keys.
    """
    if store is _DEFAULT_STORE:
        store = default_store()
    obs = obs or NULL_OBS
    ctx = CompilerContext(
        source=source,
        filename=filename,
        config={
            "max_depth": max_depth,
            "externs": externs,
            "static_rules": tuple(static_rules),
            "min_estimated_work": min_estimated_work,
            "annotations": annotations,
        },
        store=store,  # type: ignore[arg-type]
        obs=obs,
    )
    with obs.tracer.span("vsensor.compile"):
        static_pass_manager().run(ctx)
    selection = ctx.artifact("select")
    program: InstrumentedProgram = ctx.artifact("instrument")
    identification: IdentificationResult = selection.identification
    diagnostics = (
        identification.diagnostics()
        + selection.plan.diagnostics
        + program.diagnostics
    )
    return StaticResult(
        module=program.module,
        identification=identification,
        plan=selection.plan,
        program=program,
        diagnostics=diagnostics,
        profile=ctx.profile,
    )


def run_vsensor(
    source: str,
    machine: MachineConfig,
    faults: Sequence[Fault] = (),
    max_depth: int = 3,
    detector: DetectorConfig | None = None,
    rule: DynamicRule | None = None,
    externs: ExternRegistry | None = None,
    static_rules: Sequence | Iterable = (),
    window_us: float = 200_000.0,
    batch_period_us: float = 100_000.0,
    extra_hooks: Sequence = (),
    live=None,
    engine: str = "bytecode",
    analysis_engine: str = "columnar",
    channel=None,
    retry_policy=None,
    store: ArtifactStore | None | object = _DEFAULT_STORE,
    obs: Obs | None = None,
) -> VSensorRun:
    """Compile, instrument, simulate and analyze one program.

    ``window_us`` is the performance-matrix time resolution (the paper's
    matrices use 200 ms); ``batch_period_us`` is how often each rank ships
    its buffered slice summaries to the analysis server.  ``extra_hooks``
    are additional observers teed alongside the vSensor runtime (e.g. a
    raw-record collector for figure data).

    ``channel`` routes rank→server batches over a simulated unreliable
    channel: pass a :class:`~repro.runtime.channel.ChannelConfig`, a
    prebuilt :class:`~repro.runtime.channel.LossyChannel`, or a CLI-style
    spec string (``"drop=0.1,dup=0.05"``, ``"lossy"``).  Delivery then
    uses sequence numbers + retries (``retry_policy``) with idempotent
    server ingest, and the run's :attr:`VSensorRun.channel_stats` /
    report fields expose the delivery counters.

    ``analysis_engine`` selects the server's analysis data path:
    ``"columnar"`` (default; vectorized store with incremental canonical
    replay) or ``"reference"`` (the original object-at-a-time replay) —
    the two are bit-identical, the reference tier exists for differential
    testing.

    ``engine`` selects the simulator's interpreter tier: ``"bytecode"``
    (default; compiled register VM), ``"ast"`` (tree-walking reference) or
    ``"lockstep"`` (SIMD-over-ranks vectorized VM — one fetch per
    instruction applied to every rank's lane at once, with diverging ranks
    drained onto per-rank interpreters).  All tiers are bit-identical.

    ``store`` is forwarded to :func:`compile_and_instrument`.

    ``obs`` attaches an observability bundle (:mod:`repro.obs`): compile /
    simulate / analyze phase spans, per-rank virtual-time spans, and
    record / retry / dedup counters across the runtime.  The default is
    the no-op bundle; an enabled bundle never changes the report, the
    matrices, or any cached artifact (the golden suite asserts this).
    """
    from repro.runtime.channel import ChannelConfig, LossyChannel
    from repro.runtime.server import AnalysisServer
    from repro.runtime.transport import ReliableTransport, RetryPolicy
    from repro.sim.hooks import TeeHooks

    obs = obs or NULL_OBS
    metrics = obs.metrics if obs.enabled else None
    static = compile_and_instrument(
        source,
        max_depth=max_depth,
        externs=externs,
        static_rules=static_rules,
        store=store,
        obs=obs,
    )
    server = AnalysisServer(
        n_ranks=machine.n_ranks,
        window_us=window_us,
        batch_period_us=batch_period_us,
        engine=analysis_engine,
        metrics=metrics,
        obs=obs if obs.enabled else None,
    )
    runtime = VSensorRuntime(
        sensors=static.program.sensors,
        n_ranks=machine.n_ranks,
        config=detector or DetectorConfig(),
        rule=rule or NoGrouping(),
        server=server,
        obs=obs,
    )
    transport = None
    if channel is not None:
        if isinstance(channel, str):
            channel = ChannelConfig.parse(channel)
        if isinstance(channel, ChannelConfig):
            channel = LossyChannel(config=channel)
        transport = ReliableTransport(
            server=server,
            channel=channel,
            policy=retry_policy or RetryPolicy(),
            metrics=metrics,
        )
        runtime.server = transport  # type: ignore[assignment]
    runtime.live = live
    hooks = TeeHooks(runtime, *extra_hooks) if extra_hooks else runtime
    with obs.tracer.span("vsensor.simulate", engine=engine):
        sim = Simulator(
            static.program.module,
            machine,
            faults=tuple(faults),
            sensors=static.program.sensors,
            externs=externs,
            engine=engine,
            obs=obs,
        ).run(hooks)
    run = VSensorRun(static=static, sim=sim, runtime=runtime)
    with obs.tracer.span("vsensor.analyze"):
        if transport is not None:
            transport.finish()
            runtime.server = server
            run.channel_stats = transport.channel.stats.as_dict()
        run.report = runtime.report(sim.total_time)
    if run.channel_stats is not None:
        run.report.channel_stats = dict(run.channel_stats)
    return run


def run_uninstrumented(
    source: str,
    machine: MachineConfig,
    faults: Sequence[Fault] = (),
    engine: str = "bytecode",
) -> SimResult:
    """Simulate the original (probe-free) program — the overhead baseline."""
    module = parse_source(source)
    return Simulator(module, machine, faults=tuple(faults), engine=engine).run()
