"""Columnar summary store with incremental canonical replay (§5.4–§5.5).

The analysis server's derived state — normalized performance per slice,
per-cell matrix means, inter-process rank comparisons — is a function of
the *canonically ordered* summary store, not of batch arrival order.  The
reference engine realizes that as a Python dict keyed by summary identity
plus a full re-sort-and-replay after every ingest; interleaved
ingest/query (the :class:`~repro.runtime.live.LiveReporter` pattern) then
degrades quadratically in run length.

This module is the vectorized twin: summaries live in append-only NumPy
columns (amortized-doubling growth, interned group strings), the
canonical order is maintained as a sorted base plus an unsorted tail, and
the replay rolls forward instead of restarting whenever an epoch's new
rows all sort after everything already replayed — the common case for an
in-order run.  Every kernel reproduces the reference semantics
bit-for-bit: the cumulative-min history normalization uses
:func:`repro.runtime.history.observe_block`, cell means are taken with
``np.mean`` over the same values in the same canonical order, and the
inter-process math is the identical NumPy expression the reference
evaluates per (sensor, window).  The differential hypothesis suite in
``tests/runtime/test_server_columnar.py`` pins the bit-identity under
arbitrary permutation, redelivery and interleaved queries.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.runtime.history import observe_block
from repro.runtime.records import CODE_SENSOR_TYPE, SENSOR_TYPE_CODE, SliceSummary, SummaryColumns

#: store column names and dtypes; ``window`` is precomputed at ingest so
#: matrix group-bys never touch floating-point division
_COLUMNS = (
    ("rank", np.int64),
    ("sensor", np.int64),
    ("group", np.int64),
    ("slice", np.int64),
    ("t_start", np.float64),
    ("duration", np.float64),
    ("count", np.int64),
    ("miss", np.float64),
    ("stype", np.int8),
    ("window", np.int64),
)

_INITIAL_CAPACITY = 1024


def _segment_means(values: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Per-segment ``np.mean`` over contiguous runs of ``values``.

    ``bounds`` delimits the segments (``bounds[i]:bounds[i+1]``).  Means
    are taken row-wise over 2-D gathers of equal-length segments, which
    applies NumPy's pairwise summation to each contiguous row — the same
    reduction ``np.mean`` performs on each segment individually, so the
    result is bit-identical to the per-segment loop without a Python-level
    call per segment.  (``np.add.reduceat`` would sum sequentially and
    drift in the last bits.)
    """
    starts = bounds[:-1]
    lengths = bounds[1:] - starts
    means = np.empty(len(starts), np.float64)
    for length in np.unique(lengths).tolist():
        mask = lengths == length
        idx = starts[mask][:, None] + np.arange(length, dtype=np.int64)
        means[mask] = values[idx].mean(axis=1)
    return means


class ColumnarStore:
    """Append-only columnar store of slice summaries plus replay state.

    The owner (:class:`~repro.runtime.server.AnalysisServer`) drives the
    lifecycle: ``ingest_*`` appends deduplicated rows, :meth:`replay`
    brings the canonical order and per-row normalized performance up to
    date (returning what kind of epoch it was, for observability), and
    the query kernels (:meth:`matrix`, :meth:`inter_blocks`) assume
    :meth:`replay` ran first.
    """

    def __init__(self, window_us: float) -> None:
        self.window_us = window_us
        self.n = 0
        self._cap = 0
        self._cols: dict[str, np.ndarray] = {
            name: np.empty(0, dtype) for name, dtype in _COLUMNS
        }
        #: normalized performance per row, filled by replay
        self._perf = np.empty(0, np.float64)
        #: identity dedup: (rank, sensor, group code, slice)
        self._keys: set[tuple[int, int, int, int]] = set()
        #: interned dynamic-rule group strings; code 0 is ""
        self._group_codes: dict[str, int] = {"": 0}
        self._group_strs: list[str] = [""]
        self._group_rank: np.ndarray | None = None
        #: canonical order (row indices) of replayed rows
        self._order = np.empty(0, np.int64)
        self._replayed = 0
        #: running standard times keyed by (sensor id, group code)
        self._standards: dict[tuple[int, int], float] = {}
        #: canonical sort key of the last replayed row
        self._last_key: tuple[int, int, int, str] | None = None

    def __len__(self) -> int:
        return self.n

    # -- interning ---------------------------------------------------------

    def _intern(self, group: str) -> int:
        code = self._group_codes.get(group)
        if code is None:
            code = len(self._group_strs)
            self._group_codes[group] = code
            self._group_strs.append(group)
            self._group_rank = None
        return code

    def _group_sort_ranks(self) -> np.ndarray:
        """code -> rank of the group string in lexicographic string order.

        Canonical order tiebreaks on the group *string*; interned codes
        are assigned in first-seen order, so sorting by code would diverge
        from the reference.  Interning a new string keeps the relative
        order of existing strings, so previously replayed prefixes stay
        canonically sorted.
        """
        if self._group_rank is None:
            order = sorted(range(len(self._group_strs)), key=self._group_strs.__getitem__)
            ranks = np.empty(len(order), np.int64)
            ranks[np.asarray(order)] = np.arange(len(order))
            self._group_rank = ranks
        return self._group_rank

    # -- ingest ------------------------------------------------------------

    def _grow(self, need: int) -> None:
        if need <= self._cap:
            return
        cap = max(_INITIAL_CAPACITY, self._cap)
        while cap < need:
            cap *= 2
        for name, dtype in _COLUMNS:
            grown = np.empty(cap, dtype)
            grown[: self.n] = self._cols[name][: self.n]
            self._cols[name] = grown
        perf = np.empty(cap, np.float64)
        perf[: self.n] = self._perf[: self.n]
        self._perf = perf
        self._cap = cap

    def _append(self, staged: dict[str, np.ndarray]) -> None:
        k = len(staged["rank"])
        need = self.n + k
        self._grow(need)
        for name, _ in _COLUMNS:
            self._cols[name][self.n : need] = staged[name]
        self.n = need

    def ingest_summaries(
        self,
        summaries: list[SliceSummary],
        sensor_types: dict,
        last_seen: dict[int, float],
    ) -> tuple[int, int | None]:
        """Append deduplicated object-form summaries.

        Returns ``(duplicates, max_window)`` where ``max_window`` is None
        when every row was a duplicate.  ``sensor_types`` / ``last_seen``
        are the server's trackers, updated exactly as the reference
        ``_ingest`` does (kept rows only).
        """
        keys = self._keys
        ranks: list[int] = []
        sensors: list[int] = []
        groups: list[int] = []
        slices: list[int] = []
        t_starts: list[float] = []
        durations: list[float] = []
        counts: list[int] = []
        misses: list[float] = []
        stypes: list[int] = []
        duplicates = 0
        for s in summaries:
            code = self._intern(s.group)
            key = (s.rank, s.sensor_id, code, s.slice_index)
            if key in keys:
                duplicates += 1
                continue
            keys.add(key)
            ranks.append(s.rank)
            sensors.append(s.sensor_id)
            groups.append(code)
            slices.append(s.slice_index)
            t_starts.append(s.t_slice_start)
            durations.append(s.mean_duration)
            counts.append(s.count)
            misses.append(s.mean_cache_miss)
            stypes.append(SENSOR_TYPE_CODE[s.sensor_type])
            sensor_types[s.sensor_id] = s.sensor_type
            last = last_seen.get(s.rank)
            if last is None or s.t_slice_start > last:
                last_seen[s.rank] = s.t_slice_start
        if not ranks:
            return duplicates, None
        t_arr = np.asarray(t_starts, np.float64)
        window = np.floor_divide(t_arr, self.window_us).astype(np.int64)
        self._append(
            {
                "rank": np.asarray(ranks, np.int64),
                "sensor": np.asarray(sensors, np.int64),
                "group": np.asarray(groups, np.int64),
                "slice": np.asarray(slices, np.int64),
                "t_start": t_arr,
                "duration": np.asarray(durations, np.float64),
                "count": np.asarray(counts, np.int64),
                "miss": np.asarray(misses, np.float64),
                "stype": np.asarray(stypes, np.int8),
                "window": window,
            }
        )
        return duplicates, int(window.max())

    def ingest_columns(
        self,
        cols: SummaryColumns,
        sensor_types: dict,
        last_seen: dict[int, float],
    ) -> tuple[int, int | None]:
        """Append a zero-copy decoded batch (column arrays, one rank)."""
        n = len(cols)
        if n == 0:
            return 0, None
        local_codes, inverse = np.unique(cols.group_code, return_inverse=True)
        remap = np.empty(len(local_codes), np.int64)
        for i, local in enumerate(local_codes.tolist()):
            remap[i] = self._intern(cols.group_table.get(local, ""))
        store_codes = remap[inverse]
        sensors = cols.sensor_id.astype(np.int64)
        slices = cols.slice_index.astype(np.int64)
        rank = cols.rank
        keys = self._keys
        keep = np.ones(n, bool)
        duplicates = 0
        for i, (sid, code, sl) in enumerate(
            zip(sensors.tolist(), store_codes.tolist(), slices.tolist())
        ):
            key = (rank, sid, code, sl)
            if key in keys:
                keep[i] = False
                duplicates += 1
            else:
                keys.add(key)
        if not keep.any():
            return duplicates, None
        if duplicates:
            sensors = sensors[keep]
            slices = slices[keep]
            store_codes = store_codes[keep]
        t_arr = cols.t_slice_start[keep] if duplicates else cols.t_slice_start
        stype_codes = cols.sensor_type_code[keep] if duplicates else cols.sensor_type_code
        window = np.floor_divide(np.asarray(t_arr, np.float64), self.window_us).astype(np.int64)
        k = len(sensors)
        self._append(
            {
                "rank": np.full(k, rank, np.int64),
                "sensor": sensors,
                "group": store_codes,
                "slice": slices,
                "t_start": np.asarray(t_arr, np.float64),
                "duration": (cols.mean_duration[keep] if duplicates else cols.mean_duration).astype(np.float64),
                "count": (cols.count[keep] if duplicates else cols.count).astype(np.int64),
                "miss": (cols.mean_cache_miss[keep] if duplicates else cols.mean_cache_miss).astype(np.float64),
                "stype": np.asarray(stype_codes, np.int8),
                "window": window,
            }
        )
        # Last occurrence wins per sensor, as in sequential ingest.
        flipped_sensors = sensors[::-1]
        uniq, first_in_flipped = np.unique(flipped_sensors, return_index=True)
        last_idx = (k - 1) - first_in_flipped
        for sid, tcode in zip(uniq.tolist(), np.asarray(stype_codes)[last_idx].tolist()):
            sensor_types[sid] = CODE_SENSOR_TYPE[tcode]
        t_max = float(np.max(t_arr))
        last = last_seen.get(rank)
        if last is None or t_max > last:
            last_seen[rank] = t_max
        return duplicates, int(window.max())

    # -- export ------------------------------------------------------------

    def export_summaries(self, start: int, stop: int) -> list[SliceSummary]:
        """Materialize stored rows ``[start, stop)`` in insertion order.

        Rows are append-only, so insertion positions are stable cursors;
        the sharded service's query merger uses them to gather only the
        rows appended since its last refresh."""
        stop = min(stop, self.n)
        if start >= stop:
            return []
        cols = self._cols
        sel = slice(start, stop)
        groups = self._group_strs
        return [
            SliceSummary(
                rank=rank,
                sensor_id=sensor,
                sensor_type=CODE_SENSOR_TYPE[stype],
                group=groups[code],
                slice_index=slice_index,
                t_slice_start=t_start,
                mean_duration=duration,
                count=count,
                mean_cache_miss=miss,
            )
            for rank, sensor, code, slice_index, t_start, duration, count, miss, stype in zip(
                cols["rank"][sel].tolist(),
                cols["sensor"][sel].tolist(),
                cols["group"][sel].tolist(),
                cols["slice"][sel].tolist(),
                cols["t_start"][sel].tolist(),
                cols["duration"][sel].tolist(),
                cols["count"][sel].tolist(),
                cols["miss"][sel].tolist(),
                cols["stype"][sel].tolist(),
            )
        ]

    # -- canonical replay --------------------------------------------------

    def pending(self) -> bool:
        return self._replayed < self.n

    def _canonical_order(self, idx: np.ndarray) -> np.ndarray:
        """Sort row indices by (slice, rank, sensor, group string)."""
        grank = self._group_sort_ranks()
        cols = self._cols
        return idx[
            np.lexsort(
                (
                    grank[cols["group"][idx]],
                    cols["sensor"][idx],
                    cols["rank"][idx],
                    cols["slice"][idx],
                )
            )
        ]

    def _key_of(self, row: int) -> tuple[int, int, int, str]:
        cols = self._cols
        return (
            int(cols["slice"][row]),
            int(cols["rank"][row]),
            int(cols["sensor"][row]),
            self._group_strs[int(cols["group"][row])],
        )

    def replay(self) -> tuple[str, int] | None:
        """Bring the canonical order and per-row perf up to date.

        Returns ``("incremental" | "full", rows_replayed)`` when work was
        done, ``None`` when already current.  An epoch is incremental iff
        every new row sorts canonically after the last replayed row —
        then the sorted base is extended and the history state rolls
        forward; otherwise the whole store is re-sorted and re-observed.
        """
        n = self.n
        if self._replayed == n:
            return None
        tail = np.arange(self._replayed, n, dtype=np.int64)
        tail_order = self._canonical_order(tail)
        if (
            self._replayed
            and self._last_key is not None
            and self._key_of(int(tail_order[0])) > self._last_key
        ):
            self._observe_rows(tail_order)
            self._order = np.concatenate((self._order, tail_order))
            kind, rows = "incremental", n - self._replayed
        else:
            self._standards = {}
            self._order = self._canonical_order(np.arange(n, dtype=np.int64))
            self._observe_rows(self._order)
            kind, rows = "full", n
        self._last_key = self._key_of(int(self._order[-1]))
        self._replayed = n
        return kind, rows

    def _observe_rows(self, order: np.ndarray) -> None:
        """Vectorized history normalization of ``order``'s rows in place.

        Rows are grouped by (sensor, group) with a stable sort, so each
        key's durations stay in canonical order; the per-key cumulative
        minimum then continues from the carried-in standard.
        """
        cols = self._cols
        sens = cols["sensor"][order]
        grp = cols["group"][order]
        dur = cols["duration"][order]
        n_groups = len(self._group_strs)
        uniq_sens, inverse = np.unique(sens, return_inverse=True)
        pair = inverse.astype(np.int64) * n_groups + grp
        sidx = np.argsort(pair, kind="stable")
        pair_s = pair[sidx]
        dur_s = dur[sidx]
        starts = np.flatnonzero(np.concatenate(([True], pair_s[1:] != pair_s[:-1])))
        bounds = np.append(starts, len(pair_s))
        perf_s = np.empty(len(pair_s), np.float64)
        standards = self._standards
        for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
            pid = int(pair_s[a])
            key = (int(uniq_sens[pid // n_groups]), pid % n_groups)
            perf_seg, new_standard = observe_block(dur_s[a:b], standards.get(key))
            standards[key] = new_standard
            perf_s[a:b] = perf_seg
        self._perf[order[sidx]] = perf_s

    def history_standards(self) -> dict[tuple[int, str], float]:
        """Replayed standard times keyed by (sensor id, group string)."""
        return {
            (sensor_id, self._group_strs[code]): standard
            for (sensor_id, code), standard in self._standards.items()
        }

    # -- query kernels (assume replay() ran) -------------------------------

    def matrix(self, stype_code: int, n_ranks: int, n_windows: int) -> np.ndarray:
        """(n_ranks, n_windows) matrix of per-cell mean normalized perf."""
        out = np.full((n_ranks, n_windows), np.nan)
        order = self._order
        if not len(order):
            return out
        cols = self._cols
        sel = order[cols["stype"][order] == stype_code]
        if not len(sel):
            return out
        cell = cols["rank"][sel] * np.int64(n_windows) + cols["window"][sel]
        sidx = np.argsort(cell, kind="stable")
        cell_s = cell[sidx]
        perf_s = self._perf[sel][sidx]
        starts = np.flatnonzero(np.concatenate(([True], cell_s[1:] != cell_s[:-1])))
        bounds = np.append(starts, len(cell_s))
        flat = out.reshape(-1)
        # Per-cell means over the contiguous segments: same values in the
        # same canonical order as the reference's per-cell lists.
        flat[cell_s[starts]] = _segment_means(perf_s, bounds)
        return out

    def inter_blocks(self) -> Iterator[tuple[int, int, np.ndarray, np.ndarray]]:
        """Yield (sensor, window, ranks, per-rank mean durations) blocks.

        Blocks ascend by (sensor, window) and ranks ascend within each
        block — the iteration order of the reference's
        ``sorted(per_sensor.items())`` loop.
        """
        order = self._order
        if not len(order):
            return
        cols = self._cols
        sens = cols["sensor"][order]
        win = cols["window"][order]
        rank = cols["rank"][order]
        dur = cols["duration"][order]
        sidx = np.lexsort((rank, win, sens))
        sens_s = sens[sidx]
        win_s = win[sidx]
        rank_s = rank[sidx]
        dur_s = dur[sidx]
        change = (
            (sens_s[1:] != sens_s[:-1])
            | (win_s[1:] != win_s[:-1])
            | (rank_s[1:] != rank_s[:-1])
        )
        starts = np.flatnonzero(np.concatenate(([True], change)))
        bounds = np.append(starts, len(sens_s))
        means = _segment_means(dur_s, bounds)
        seg_sens = sens_s[starts]
        seg_win = win_s[starts]
        seg_rank = rank_s[starts]
        block_change = (seg_sens[1:] != seg_sens[:-1]) | (seg_win[1:] != seg_win[:-1])
        block_starts = np.flatnonzero(np.concatenate(([True], block_change)))
        block_bounds = np.append(block_starts, len(seg_sens))
        for a, b in zip(block_starts.tolist(), block_bounds[1:].tolist()):
            yield int(seg_sens[a]), int(seg_win[a]), seg_rank[a:b], means[a:b]
