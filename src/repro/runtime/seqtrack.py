"""Cumulative-watermark sequence tracking (the PR 2 delivery contract).

One :class:`SequenceTracker` guards one sequenced stream: ``accept``
admits each sequence number exactly once (at-least-once delivery
upstream, exactly-once effect downstream) and maintains the cumulative
watermark — every ``seq <= watermark`` has been received — that the
reliable transport reads back as its ack.  Out-of-order arrivals park in
a small above-watermark set until the gap fills.

Extracted from :class:`~repro.runtime.server.AnalysisServer` so the
sharded service's ingest front can run the identical dedup discipline
per ``(job, rank)`` stream without duplicating the watermark logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class SequenceTracker:
    """Exactly-once admission over one sequence-numbered stream."""

    #: every sequence number <= this has been accepted
    watermark: int = -1
    #: accepted sequence numbers above the watermark (arrival gaps)
    _seen: set[int] = field(default_factory=set)

    def accept(self, seq: int) -> bool:
        """Record one received sequence number; False if already seen."""
        if seq <= self.watermark or seq in self._seen:
            return False
        self._seen.add(seq)
        while self.watermark + 1 in self._seen:
            self.watermark += 1
            self._seen.remove(self.watermark)
        return True

    def is_acked(self, seq: int) -> bool:
        return seq <= self.watermark or seq in self._seen
