"""Per-sensor history: one scalar standard time (§5.3).

A v-sensor's work never changes, so its fastest observed (slice-averaged)
execution time is the *standard time*.  Normalized performance of a new
observation is ``standard / observed`` — 1.0 for the fastest ever seen,
0.5 for twice as slow (§5.2).  Storage is O(sensors), not O(records).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class SensorHistory:
    """Standard times keyed by (sensor id, dynamic-rule group)."""

    _standard: dict[tuple[int, str], float] = field(default_factory=dict)

    def observe(self, sensor_id: int, group: str, mean_duration: float) -> float:
        """Update history with one slice average; return normalized perf.

        The first observation of a sensor defines its standard and scores
        1.0; any later faster observation lowers the standard (and the
        normalization of *future* records — the paper's matrices show the
        same effect at the start of a run).
        """
        key = (sensor_id, group)
        standard = self._standard.get(key)
        if standard is None or mean_duration < standard:
            self._standard[key] = mean_duration
            return 1.0
        if mean_duration <= 0.0:
            return 1.0
        return standard / mean_duration

    def standard_time(self, sensor_id: int, group: str = "") -> float | None:
        return self._standard.get((sensor_id, group))

    def entries(self) -> int:
        return len(self._standard)
