"""Per-sensor history: one scalar standard time (§5.3).

A v-sensor's work never changes, so its fastest observed (slice-averaged)
execution time is the *standard time*.  Normalized performance of a new
observation is ``standard / observed`` — 1.0 for the fastest ever seen,
0.5 for twice as slow (§5.2).  Storage is O(sensors), not O(records).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def observe_block(
    durations: np.ndarray, prev_standard: float | None
) -> tuple[np.ndarray, float]:
    """Vectorized :meth:`SensorHistory.observe` over one (sensor, group) run.

    ``durations`` are that key's slice averages in canonical replay order;
    ``prev_standard`` is the standard time carried in from earlier epochs
    (``None`` for a fresh key).  Returns the per-observation normalized
    performance and the new standard, with the exact branch semantics of
    the scalar path: a strictly faster (or first) observation scores 1.0
    and lowers the standard, a non-positive duration scores 1.0 without
    touching the standard, everything else scores ``standard / duration``
    against the running cumulative minimum.
    """
    d = np.asarray(durations, dtype=np.float64)
    seed = np.inf if prev_standard is None else prev_standard
    cummin = np.minimum.accumulate(np.concatenate(([seed], d)))
    prev_min = cummin[:-1]
    # Both branches of the where() are evaluated eagerly; the discarded
    # one may divide by zero / by the inf seed, so silence those only.
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        perf = np.where(d < prev_min, 1.0, np.where(d <= 0.0, 1.0, prev_min / d))
    if prev_standard is None and len(d):
        # The first observation of a key always defines the standard and
        # scores 1.0, whatever its value (matches the ``standard is None``
        # branch even for non-finite durations).
        perf[0] = 1.0
    return perf, float(cummin[-1])


@dataclass(slots=True)
class SensorHistory:
    """Standard times keyed by (sensor id, dynamic-rule group)."""

    _standard: dict[tuple[int, str], float] = field(default_factory=dict)

    def observe(self, sensor_id: int, group: str, mean_duration: float) -> float:
        """Update history with one slice average; return normalized perf.

        The first observation of a sensor defines its standard and scores
        1.0; any later faster observation lowers the standard (and the
        normalization of *future* records — the paper's matrices show the
        same effect at the start of a run).
        """
        key = (sensor_id, group)
        standard = self._standard.get(key)
        if standard is None or mean_duration < standard:
            self._standard[key] = mean_duration
            return 1.0
        if mean_duration <= 0.0:
            return 1.0
        return standard / mean_duration

    def standard_time(self, sensor_id: int, group: str = "") -> float | None:
        return self._standard.get((sensor_id, group))

    def entries(self) -> int:
        return len(self._standard)

    @classmethod
    def from_standards(cls, standards: dict[tuple[int, str], float]) -> "SensorHistory":
        """Rehydrate a history from replayed standard times (columnar path)."""
        return cls(_standard=dict(standards))
