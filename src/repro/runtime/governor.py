"""Runtime-adaptive sensor lifecycle: the overhead governor.

The static selector (§4) picks sensors once; the paper's only runtime
knob is the §5.3 shutoff — one-way, per rank, decided after a fixed
number of records and never revisited.  This module refactors that
lifecycle into mutable runtime state threaded through every layer that
touches a probe:

* :class:`SensorControl` — one sensor's per-rank state machine:
  ``enabled`` → ``sampled`` (keep 1-in-N executions) → ``suspended``,
  with exact execution accounting (every probe execution is classified
  as exactly one of kept / sampled-out / suppressed — nothing is
  double-counted or silently dropped).
* :class:`SensorControlTable` — the engine-facing consult surface.  All
  three interpreter tiers ask it, per probe execution, whether to pay
  the full probe (``machine.probe_cost`` each side, PMU read, record
  emission) or only a cheap table check (``check_cost`` each side, no
  record).  The decision is **latched at tick**: the matching tock
  completes whatever the tick decided, so state changes between a
  tick and its tock can never corrupt probe pairing.
* :class:`PaperShutoff` — §5.3 extracted from ``RankDetector.add`` as a
  lifecycle rule object, bit-identical to the historical inline logic.
* :class:`OverheadGovernor` — the control loop.  At slice boundaries it
  compares the rank's probe self-cost (kept/skipped record counts ×
  per-record virtual cost) against an overhead-budget fraction of
  elapsed virtual time, demotes the cheapest-information sensors first
  (ordered by the selector's exported cost/frequency estimates), and
  re-promotes demoted sensors the moment a sibling sensor on the same
  rank reports variance.

Policies:

``policy="paper-shutoff"``
    Only the §5.3 rule runs.  No engine-side control is installed, so
    timing, record streams and shutoff sets are exactly today's.
``policy="adaptive"``
    The full budget loop; the §5.3 rule still runs and pins its
    shutoffs as permanent suspensions (a sensor too short to time is
    never worth re-promoting).

Decisions are **deterministic**: they depend only on virtual-time
record accounting, never on host wall time.  The obs layer's measured
``self_cost_s`` is surfaced alongside (:meth:`OverheadGovernor.summary`)
for calibration, but feeding wall time into the control loop would make
simulated runs non-reproducible, so the loop sticks to the virtual-cost
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: control states
ENABLED = "enabled"
SAMPLED = "sampled"
SUSPENDED = "suspended"

#: decision kinds tallied per rank (CLI / report surface)
DECISIONS = ("demote", "promote", "suspend", "resample")


@dataclass(slots=True)
class SensorControl:
    """Per-(rank, sensor) lifecycle state with exact execution accounting."""

    state: str = ENABLED
    #: keep 1 in this many executions while ``state == SAMPLED``
    sample_period: int = 1
    #: rolling position within the sampling period
    phase: int = 0
    #: paper-shutoff suspensions are pinned: never re-promoted
    pinned: bool = False
    executions: int = 0
    kept: int = 0
    sampled_out: int = 0
    suppressed: int = 0
    #: skipped ticks awaiting their matching tock
    pending_skips: int = 0

    def covered(self) -> int:
        """Executions statistically represented in analysis output.

        Kept records are directly represented; sampled-out executions are
        represented by their kept 1-in-N siblings.  Suppressed executions
        are not represented at all.
        """
        return self.kept + self.sampled_out


class SensorControlTable:
    """Engine-facing consult surface over per-rank control states.

    ``decide`` is the single mutation point of the accounting counters:
    every probe execution lands in exactly one of kept / sampled-out /
    suppressed, which is the invariant the coverage correction (and the
    Hypothesis property suite) rests on.  ``peek``/``peek_skip`` are
    side-effect-free so the lockstep tier can test whole-batch uniformity
    before consuming, and drain to scalar lanes on divergence without
    double-counting.
    """

    __slots__ = ("check_cost", "_ranks")

    def __init__(self, check_cost: float = 0.1) -> None:
        #: work units charged per *side* (tick or tock) of a skipped probe
        self.check_cost = check_cost
        self._ranks: dict[int, dict[int, SensorControl]] = {}

    def controls(self, rank: int) -> dict[int, SensorControl]:
        table = self._ranks.get(rank)
        if table is None:
            table = self._ranks[rank] = {}
        return table

    def get(self, rank: int, sensor_id: int) -> SensorControl:
        table = self.controls(rank)
        ctl = table.get(sensor_id)
        if ctl is None:
            ctl = table[sensor_id] = SensorControl()
        return ctl

    def ranks(self) -> list[int]:
        return sorted(self._ranks)

    # -- engine consult (hot path) ------------------------------------------

    def peek(self, rank: int, sensor_id: int) -> bool:
        """Would the next execution of this sensor record?  No side effects."""
        ctl = self._ranks.get(rank, {}).get(sensor_id)
        if ctl is None or ctl.state == ENABLED:
            return True
        if ctl.state == SUSPENDED:
            return False
        return ctl.phase + 1 >= ctl.sample_period

    def decide(self, rank: int, sensor_id: int) -> bool:
        """Consume one execution; True = pay the full probe and record."""
        ctl = self.get(rank, sensor_id)
        ctl.executions += 1
        state = ctl.state
        if state == ENABLED:
            ctl.kept += 1
            return True
        if state == SUSPENDED:
            ctl.suppressed += 1
            ctl.pending_skips += 1
            return False
        ctl.phase += 1
        if ctl.phase >= ctl.sample_period:
            ctl.phase = 0
            ctl.kept += 1
            return True
        ctl.sampled_out += 1
        ctl.pending_skips += 1
        return False

    def peek_skip(self, rank: int, sensor_id: int) -> bool:
        """Is the open tick for this sensor a skipped one?  No side effects."""
        ctl = self._ranks.get(rank, {}).get(sensor_id)
        return ctl is not None and ctl.pending_skips > 0

    def pop_skip(self, rank: int, sensor_id: int) -> bool:
        """Tock side: consume a pending skipped tick if one is open."""
        ctl = self._ranks.get(rank, {}).get(sensor_id)
        if ctl is not None and ctl.pending_skips > 0:
            ctl.pending_skips -= 1
            return True
        return False


@dataclass(slots=True)
class PaperShutoff:
    """§5.3 extracted from ``RankDetector.add``: after ``shutoff_after``
    records, a sensor whose mean duration is below ``min_duration_us`` is
    shut off permanently (the triggering record itself is dropped).

    The arithmetic and control flow are the historical inline logic,
    verbatim — the detector's default behavior must stay bit-identical.
    """

    min_duration_us: float = 2.0
    shutoff_after: int = 50
    shutoff: set[int] = field(default_factory=set)
    #: called with the sensor id at the moment of shutoff (governor hook)
    on_shutoff: object | None = None
    _seen: dict[int, int] = field(default_factory=dict)
    _dur_sum: dict[int, float] = field(default_factory=dict)

    def is_off(self, sensor_id: int) -> bool:
        return sensor_id in self.shutoff

    def observe(self, sensor_id: int, duration: float) -> bool:
        """Feed one record's duration; False = sensor just shut off."""
        seen = self._seen.get(sensor_id, 0) + 1
        self._seen[sensor_id] = seen
        self._dur_sum[sensor_id] = self._dur_sum.get(sensor_id, 0.0) + duration
        if seen == self.shutoff_after:
            if self._dur_sum[sensor_id] / seen < self.min_duration_us:
                self.shutoff.add(sensor_id)
                if self.on_shutoff is not None:
                    self.on_shutoff(sensor_id)  # type: ignore[operator]
                return False
        return True


@dataclass(slots=True)
class GovernorConfig:
    """Tuning knobs of the overhead governor."""

    #: probe self-cost may use at most this fraction of elapsed virtual time
    overhead_budget: float = 0.02
    #: ``"adaptive"`` or ``"paper-shutoff"``
    policy: str = "adaptive"
    #: budget evaluation cadence (defaults to the detector slice length)
    eval_period_us: float = 1000.0
    #: keep 1-in-this-many executions in the ``sampled`` state
    sample_period: int = 8
    #: consecutive over-budget evaluations before a demotion round
    demote_patience: int = 2
    #: consecutive comfortably-under-budget evaluations before a promotion
    promote_patience: int = 3
    #: promote only when spend is below this fraction of the budget
    promote_headroom: float = 0.5
    #: variance-triggered promotion fires only for events at least this
    #: severe (normalized performance below this).  Ordinary machine
    #: jitter produces a steady trickle of events just under the 0.7
    #: detection threshold; if every one of them re-promoted, the budget
    #: loop could never hold a demotion.  Genuine faults land far lower.
    promote_severity: float = 0.5
    #: ...but not *too* far: a systemic slowdown (contention, thermal
    #: throttling, a bad node) scales durations by a bounded factor,
    #: while an isolated extreme outlier — an OS interrupt or SMI landing
    #: inside one snippet execution — craters performance to near zero.
    #: Events below this floor are treated as measurement artifacts and
    #: do not trigger promotion.  ``performance == 0.0`` (programmatic
    #: signal) is exempt.
    promote_floor: float = 0.2
    #: a *sustained* episode, not an isolated noise spike, is what
    #: deserves full telemetry: permanent promotion needs this many
    #: severe events within ``promote_confirm_window_us`` on the rank.
    #: An event with ``performance == 0.0`` (a programmatic
    #: maximal-severity signal) bypasses confirmation and promotes
    #: immediately.
    promote_confirm: int = 3
    promote_confirm_window_us: float = 3000.0
    #: an *unconfirmed* severe event starts a probation: demoted sensors
    #: run at full rate for this long, so a genuine episode (one severe
    #: event per slice at full rate) confirms within the window, while an
    #: isolated spike costs only this much full-rate telemetry before
    #: the saved sampling states are restored
    probation_us: float = 3000.0
    #: sensor types whose variance events drive probation / promotion.
    #: ``None`` (the default) means every type *except* network sensors:
    #: communication snippets measure wait time, and wait time absorbs
    #: *other* ranks' noise (the Fig. 18/19 phenomenon — the profile
    #: misleads toward MPI).  A rank whose neighbour runs a data-dependent
    #: loop sees huge wait variance on a perfectly quiet machine; letting
    #: those events re-promote would keep the whole node at full rate
    #: forever.  Pass an explicit tuple (including
    #: ``SensorType.NETWORK``) to override.
    promote_sensor_types: tuple | None = None
    #: work units charged per side of a skipped probe (the table check)
    check_cost: float = 0.1

    def __post_init__(self) -> None:
        if self.policy not in ("adaptive", "paper-shutoff"):
            raise ValueError(
                f"unknown governor policy {self.policy!r} (adaptive|paper-shutoff)"
            )
        if not (0.0 < self.overhead_budget < 1.0):
            raise ValueError("overhead_budget must be in (0, 1)")
        if self.sample_period < 2:
            raise ValueError("sample_period must be >= 2")


class OverheadGovernor:
    """Per-rank budget control loop over a :class:`SensorControlTable`.

    One instance serves every rank of a run (rank state is partitioned
    inside the table and the eval bookkeeping).  The runtime hooks call
    :meth:`on_record` per kept record and :meth:`on_variance` per
    detector event; the engines consult :attr:`control` per probe
    execution (``None`` unless the policy is adaptive, which keeps the
    disabled/paper-shutoff paths bit-identical to the historical code).
    """

    def __init__(
        self,
        config: GovernorConfig | None = None,
        *,
        estimates: dict[int, object] | None = None,
        probe_cost: float = 0.5,
        detector_config=None,
        ranks_per_node: int | None = None,
        metrics=None,
        obs=None,
    ) -> None:
        self.config = config or GovernorConfig()
        if detector_config is not None and config is None:
            self.config.eval_period_us = detector_config.slice_us
        self.table = SensorControlTable(check_cost=self.config.check_cost)
        #: virtual µs per kept record (tick + tock, work units ≈ µs)
        self.record_cost_us = 2.0 * probe_cost
        #: virtual µs per skipped execution (two table checks)
        self.skip_cost_us = 2.0 * self.config.check_cost
        self.estimates = estimates or {}
        self.metrics = metrics
        self.obs = obs
        self.detector_config = detector_config
        #: node topology for sibling fan-out (None = every rank its own node)
        self.ranks_per_node = ranks_per_node
        #: per-rank decision tallies (CLI / report surface)
        self.decisions: dict[int, dict[str, int]] = {}
        self._last_eval: dict[int, float] = {}
        self._over: dict[int, int] = {}
        self._under: dict[int, int] = {}
        #: per-rank timestamps of recent severe events (promotion confirm)
        self._severe: dict[int, list[float]] = {}
        #: per-rank active probation: (deadline, saved {sid: (state, period)})
        self._probation: dict[int, tuple[float, dict[int, tuple[str, int]]]] = {}
        #: per-rank (kept, skipped) totals at the last evaluation
        self._snapshot: dict[int, tuple[int, int]] = {}
        self.evaluations = 0

    # -- wiring --------------------------------------------------------------

    @property
    def engine_active(self) -> bool:
        return self.config.policy == "adaptive"

    @property
    def control(self) -> SensorControlTable | None:
        """The engine-facing control table (None for paper-shutoff)."""
        return self.table if self.engine_active else None

    def lifecycle(self, rank: int) -> PaperShutoff:
        """The §5.3 rule for one rank's detector, governor-instrumented."""
        dc = self.detector_config
        rule = PaperShutoff(
            min_duration_us=dc.min_duration_us if dc is not None else 2.0,
            shutoff_after=dc.shutoff_after if dc is not None else 50,
        )
        rule.on_shutoff = lambda sid: self._paper_shutoff(rank, sid)
        return rule

    def _paper_shutoff(self, rank: int, sensor_id: int) -> None:
        """§5.3 fired: record the decision; under the adaptive policy the
        suspension also reaches the engine (pinned — never re-promoted)."""
        self._tally(rank, "suspend")
        self._count("governor.suspend")
        if self.engine_active:
            ctl = self.table.get(rank, sensor_id)
            ctl.state = SUSPENDED
            ctl.pinned = True

    # -- runtime signals -----------------------------------------------------

    def on_record(self, rank: int, now: float) -> None:
        """One kept record on ``rank`` at virtual time ``now``."""
        if not self.engine_active:
            return
        probation = self._probation.get(rank)
        if probation is not None:
            if now <= probation[0]:
                return  # full-rate probe window; budget evals paused
            self._probation.pop(rank, None)
            self._restore(rank, probation[1])
            self._resync(rank, now)
            return
        last = self._last_eval.get(rank)
        if last is None:
            self._last_eval[rank] = now
            return
        if now - last >= self.config.eval_period_us:
            self.evaluate(rank, now)

    def on_variance(
        self,
        rank: int,
        now: float,
        performance: float = 0.0,
        sensor_type=None,
    ) -> None:
        """A sensor on ``rank`` reported variance: restore full telemetry
        on the rank *and its node siblings* — variance is exactly when
        telemetry must not be throttled, and a contended node slows every
        rank on it, including the ones whose sampled probes happened to
        skip the episode's onset.

        ``performance`` is the event's normalized performance (worst of
        the batch); only events below ``config.promote_severity`` act, so
        routine jitter events cannot defeat the budget loop, and the
        severe ones must recur within ``promote_confirm_window_us`` —
        machine-noise spikes are deep but isolated, genuine fault
        episodes produce a severe event per slice.  The default
        ``performance=0.0`` is a programmatic maximal-severity signal
        that bypasses every gate, including the sensor-type filter.
        ``sensor_type`` is the reporting sensor's type; network-sensor
        events are ignored unless ``config.promote_sensor_types`` admits
        them (wait time absorbs other ranks' noise — Fig. 18/19).
        """
        if not self.engine_active:
            return
        if performance > 0.0 and not self._drives_promotion(sensor_type):
            return
        if performance >= self.config.promote_severity:
            return
        if 0.0 < performance < self.config.promote_floor:
            return  # isolated-outlier artifact, not a systemic slowdown
        if performance > 0.0 and self.config.promote_confirm > 1:
            window = self.config.promote_confirm_window_us
            recent = [
                t for t in self._severe.get(rank, []) if now - t <= window
            ]
            recent.append(now)
            self._severe[rank] = recent
            if len(recent) < self.config.promote_confirm:
                for sibling in self._siblings(rank):
                    self._begin_probation(sibling, now)
                return
        for sibling in self._siblings(rank):
            self._promote_all(sibling)

    def _drives_promotion(self, sensor_type) -> bool:
        """Whether events from this sensor type may re-promote."""
        if sensor_type is None:
            return True
        allowed = self.config.promote_sensor_types
        if allowed is not None:
            return sensor_type in allowed
        return getattr(sensor_type, "name", "") != "NETWORK"

    def _siblings(self, rank: int) -> list[int]:
        """Ranks sharing ``rank``'s node (always includes ``rank``)."""
        rpn = self.ranks_per_node
        if rpn is None or rpn <= 0:
            return [rank]
        node = rank // rpn
        sibs = [r for r in self.table.ranks() if r // rpn == node]
        if rank not in sibs:
            sibs.append(rank)
        return sibs

    def _promote_all(self, rank: int) -> None:
        """Confirmed variance: every demoted (non-pinned) sensor of
        ``rank`` back to full rate, ending any probation permanently."""
        probation = self._probation.pop(rank, None)
        promoted = len(probation[1]) if probation is not None else 0
        for ctl in self.table.controls(rank).values():
            if ctl.pinned or ctl.state == ENABLED:
                continue
            ctl.state = ENABLED
            ctl.phase = 0
            ctl.sample_period = 1
            promoted += 1
        if promoted:
            self._tally(rank, "promote", promoted)
            self._count("governor.promote", promoted)
        # A severe event holds off demotion even when nothing needed
        # promoting — mid-episode the rank must stay at full fidelity.
        self._over[rank] = 0
        self._under[rank] = 0

    def _begin_probation(self, rank: int, now: float) -> None:
        """Full-rate probe window after an unconfirmed severe event."""
        deadline = now + self.config.probation_us
        entry = self._probation.get(rank)
        if entry is not None:
            self._probation[rank] = (deadline, entry[1])
            return
        saved: dict[int, tuple[str, int]] = {}
        for sid, ctl in self.table.controls(rank).items():
            if ctl.pinned or ctl.state == ENABLED:
                continue
            saved[sid] = (ctl.state, ctl.sample_period)
            ctl.state = ENABLED
            ctl.sample_period = 1
            ctl.phase = 0
        if not saved:
            return
        self._probation[rank] = (deadline, saved)
        self._tally(rank, "resample")
        self._count("governor.resample")

    def _stagger(self, rank: int, sensor_id: int, period: int) -> int:
        """Deterministic sampling-phase offset for a demoted sensor.

        Lockstep workloads (compute + allreduce per iteration) execute
        every sensor in the same global iteration on every rank.  If all
        sensors were demoted with the same phase, entire iterations would
        carry no probe at all — and a short episode could fall entirely
        between kept records on every sensor at once.  Staggering by
        *sensor* spreads coverage across consecutive iterations.  The
        offset is deliberately **uniform across ranks**: skewing ranks
        against each other would put some rank's full probe cost into
        every iteration, and the collectives would couple that skew into
        the critical path on every iteration — the unsynchronized-noise
        amplification the paper's Fig. 18/19 victims suffer.  Synchronized
        sampling keeps 3 of every 4 iterations probe-free on *every* rank
        simultaneously, so the savings survive the allreduce.
        """
        del rank  # uniform across ranks by design (see above)
        return sensor_id % period

    def _restore(self, rank: int, saved: dict[int, tuple[str, int]]) -> None:
        """Probation lapsed without confirmation: back to saved sampling."""
        controls = self.table.controls(rank)
        for sid, (state, period) in saved.items():
            ctl = controls.get(sid)
            if ctl is None or ctl.pinned or ctl.state != ENABLED:
                continue
            ctl.state = state
            ctl.sample_period = period
            ctl.phase = self._stagger(rank, sid, period) if state == SAMPLED else 0

    def _resync(self, rank: int, now: float) -> None:
        """Restart budget accounting at ``now`` — probation spend is the
        price of checking, not evidence for the next demotion round."""
        kept = skipped = 0
        for ctl in self.table.controls(rank).values():
            kept += ctl.kept
            skipped += ctl.sampled_out + ctl.suppressed
        self._snapshot[rank] = (kept, skipped)
        self._last_eval[rank] = now

    # -- the budget loop -----------------------------------------------------

    def evaluate(self, rank: int, now: float) -> None:
        """One slice-boundary budget evaluation for ``rank``."""
        last = self._last_eval.get(rank, 0.0)
        elapsed = now - last
        if elapsed <= 0.0:
            return
        self.evaluations += 1
        self._last_eval[rank] = now
        kept = skipped = 0
        for ctl in self.table.controls(rank).values():
            kept += ctl.kept
            skipped += ctl.sampled_out + ctl.suppressed
        kept0, skipped0 = self._snapshot.get(rank, (0, 0))
        self._snapshot[rank] = (kept, skipped)
        spent_us = (kept - kept0) * self.record_cost_us + (
            skipped - skipped0
        ) * self.skip_cost_us
        frac = spent_us / elapsed
        budget = self.config.overhead_budget
        if frac > budget:
            self._under[rank] = 0
            strikes = self._over.get(rank, 0) + 1
            if strikes >= self.config.demote_patience:
                self._over[rank] = 0
                self._demote(rank, frac)
            else:
                self._over[rank] = strikes
        elif frac <= budget * self.config.promote_headroom:
            self._over[rank] = 0
            strikes = self._under.get(rank, 0) + 1
            if strikes >= self.config.promote_patience:
                self._under[rank] = 0
                self._promote(rank)
            else:
                self._under[rank] = strikes
        else:
            self._over[rank] = 0
            self._under[rank] = 0

    def _info_key(self, sensor_id: int):
        """Demotion order: cheapest information first.

        Small estimated work → the snippet carries little signal per record
        and its probe overhead is relatively largest; high estimated call
        frequency → many redundant records per unit of information.  Unknown
        estimates sort last (conservative: keep what we cannot judge).
        """
        est = self.estimates.get(sensor_id)
        work = getattr(est, "est_work", None) if est is not None else None
        freq = getattr(est, "est_calls", None) if est is not None else None
        return (
            work if work is not None else float("inf"),
            -(freq if freq is not None else 0.0),
            sensor_id,
        )

    def _demote(self, rank: int, frac: float) -> None:
        """Step the cheapest-information sensors down until the projected
        spend fits the budget (at most one state step per sensor per round)."""
        controls = self.table.controls(rank)
        order = sorted(
            (sid for sid, c in controls.items() if c.state != SUSPENDED),
            key=self._info_key,
        )
        budget = self.config.overhead_budget
        projected = frac
        for sid in order:
            if projected <= budget:
                break
            ctl = controls[sid]
            total = max(1, sum(c.kept for c in controls.values()))
            share = frac * ctl.kept / total
            if ctl.state == ENABLED:
                ctl.state = SAMPLED
                ctl.sample_period = self.config.sample_period
                ctl.phase = self._stagger(rank, sid, ctl.sample_period)
                projected -= share * (1.0 - 1.0 / ctl.sample_period)
                self._tally(rank, "demote")
                self._tally(rank, "resample")
                self._count("governor.demote")
                self._count("governor.resample")
            else:  # SAMPLED -> SUSPENDED
                ctl.state = SUSPENDED
                projected -= share
                self._tally(rank, "demote")
                self._tally(rank, "suspend")
                self._count("governor.demote")
                self._count("governor.suspend")

    def _promote(self, rank: int) -> None:
        """Step the most informative demoted sensor one state up."""
        controls = self.table.controls(rank)
        candidates = sorted(
            (sid for sid, c in controls.items()
             if c.state != ENABLED and not c.pinned),
            key=self._info_key,
            reverse=True,
        )
        if not candidates:
            return
        ctl = controls[candidates[0]]
        if ctl.state == SUSPENDED:
            ctl.state = SAMPLED
            ctl.sample_period = self.config.sample_period
            ctl.phase = self._stagger(rank, candidates[0], ctl.sample_period)
            self._tally(rank, "promote")
            self._tally(rank, "resample")
            self._count("governor.promote")
            self._count("governor.resample")
        else:
            ctl.state = ENABLED
            ctl.sample_period = 1
            ctl.phase = 0
            self._tally(rank, "promote")
            self._count("governor.promote")

    # -- bookkeeping ---------------------------------------------------------

    def _tally(self, rank: int, kind: str, n: int = 1) -> None:
        tally = self.decisions.get(rank)
        if tally is None:
            tally = self.decisions[rank] = dict.fromkeys(DECISIONS, 0)
        tally[kind] += n

    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    def totals(self) -> dict[str, int]:
        """Decision counts summed over every rank."""
        out = dict.fromkeys(DECISIONS, 0)
        for tally in self.decisions.values():
            for kind in DECISIONS:
                out[kind] += tally[kind]
        return out

    def coverage(self) -> float:
        """Fraction of probe executions represented in analysis output.

        Kept + sampled-out executions count as covered (sampled-out records
        are statistically represented by their kept 1-in-N siblings);
        suppressed executions are the uncovered mass.  1.0 when no probe
        ever consulted the table.
        """
        executions = covered = 0
        for rank_tables in self.table._ranks.values():
            for ctl in rank_tables.values():
                executions += ctl.executions
                covered += ctl.covered()
        return covered / executions if executions else 1.0

    def suspended_sensors(self) -> int:
        """(rank, sensor) pairs currently suspended by the governor."""
        return sum(
            1
            for rank_tables in self.table._ranks.values()
            for ctl in rank_tables.values()
            if ctl.state == SUSPENDED
        )

    def summary(self) -> str:
        totals = self.totals()
        parts = " ".join(f"{kind}={totals[kind]}" for kind in DECISIONS)
        line = (
            f"governor[{self.config.policy}] budget={self.config.overhead_budget:.1%} "
            f"evals={self.evaluations} {parts} coverage={self.coverage():.3f}"
        )
        if self.obs is not None and getattr(self.obs, "enabled", False):
            line += f" obs_self_cost={self.obs.self_cost_s():.4f}s"
        return line

    def format_tally(self) -> str:
        """Per-rank decision table (the CLI's ``--obs-summary`` mirror of
        the ``identify --explain`` fusability tally)."""
        lines = ["governor decisions (per rank):"]
        for rank in sorted(self.decisions):
            tally = self.decisions[rank]
            if not any(tally.values()):
                continue
            detail = " ".join(f"{kind}={tally[kind]}" for kind in DECISIONS)
            lines.append(f"   rank {rank:>4d}: {detail}")
        totals = self.totals()
        detail = " ".join(f"{kind}={totals[kind]}" for kind in DECISIONS)
        lines.append(f"   total     : {detail}  coverage={self.coverage():.3f}")
        return "\n".join(lines)
