"""Detection-quality scoring against injected ground truth.

The simulator knows exactly which faults were injected; this module scores
a variance report against that ground truth:

* **recall** — every injected fault should be covered by at least one
  detected region of the right component that overlaps it in both the
  rank and the time dimension;
* **precision** — detected regions (above a cell-count floor) should
  overlap *some* injected fault.

Used by tests and by the detectability benchmark (how much slowdown a
fault needs before vSensor sees it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.report import VarianceRegion, VarianceReport
from repro.sensors.model import SensorType
from repro.sim.faults import (
    BadNode,
    CpuContention,
    Fault,
    IoDegradation,
    NetworkDegradation,
    SlowMemoryNode,
)
from repro.sim.machine import MachineConfig


@dataclass(frozen=True, slots=True)
class GroundTruth:
    """One injected fault, normalized to report coordinates."""

    sensor_type: SensorType
    rank_lo: int
    rank_hi: int
    t0: float
    t1: float

    def overlaps(self, region: VarianceRegion, slack_us: float = 0.0) -> bool:
        if region.sensor_type is not self.sensor_type:
            return False
        ranks_overlap = region.rank_hi >= self.rank_lo and region.rank_lo <= self.rank_hi
        time_overlap = (
            region.t_end_us + slack_us >= self.t0 and region.t_start_us - slack_us <= self.t1
        )
        return ranks_overlap and time_overlap


def ground_truth_of(
    faults: tuple[Fault, ...] | list[Fault],
    machine: MachineConfig,
    total_time_us: float,
) -> list[GroundTruth]:
    """Translate fault objects into expected report coordinates."""
    out: list[GroundTruth] = []
    for fault in faults:
        if isinstance(fault, (SlowMemoryNode, BadNode)):
            ranks = machine.ranks_on_node(fault.node_id)
            out.append(
                GroundTruth(
                    sensor_type=SensorType.COMPUTATION,
                    rank_lo=min(ranks),
                    rank_hi=max(ranks),
                    t0=max(0.0, fault.t0),
                    t1=min(total_time_us, fault.t1),
                )
            )
        elif isinstance(fault, CpuContention):
            for node_id in fault.node_ids:
                ranks = machine.ranks_on_node(node_id)
                out.append(
                    GroundTruth(
                        sensor_type=SensorType.COMPUTATION,
                        rank_lo=min(ranks),
                        rank_hi=max(ranks),
                        t0=fault.t0,
                        t1=min(total_time_us, fault.t1),
                    )
                )
        elif isinstance(fault, NetworkDegradation):
            out.append(
                GroundTruth(
                    sensor_type=SensorType.NETWORK,
                    rank_lo=0,
                    rank_hi=machine.n_ranks - 1,
                    t0=fault.t0,
                    t1=min(total_time_us, fault.t1),
                )
            )
        elif isinstance(fault, IoDegradation):
            if fault.node_ids is None:
                lo, hi = 0, machine.n_ranks - 1
            else:
                ranks = [r for n in fault.node_ids for r in machine.ranks_on_node(n)]
                lo, hi = min(ranks), max(ranks)
            out.append(
                GroundTruth(
                    sensor_type=SensorType.IO,
                    rank_lo=lo,
                    rank_hi=hi,
                    t0=fault.t0,
                    t1=min(total_time_us, fault.t1),
                )
            )
    return out


@dataclass(slots=True)
class QualityScore:
    truths: list[GroundTruth]
    detected: list[VarianceRegion]
    matched_truths: int = 0
    matched_regions: int = 0
    #: the report's sampling coverage under governor throttling — an
    #: F-score over 80%-covered telemetry is not the same claim as one
    #: over full telemetry, so the score carries the fraction along
    coverage: float = 1.0

    @property
    def recall(self) -> float:
        return self.matched_truths / len(self.truths) if self.truths else 1.0

    @property
    def precision(self) -> float:
        return self.matched_regions / len(self.detected) if self.detected else 1.0

    @property
    def f_score(self) -> float:
        """Harmonic mean of precision and recall — the single number the
        transport-loss sweep tracks against drop rate."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if p + r > 0 else 0.0

    def describe(self) -> str:
        out = (
            f"recall {self.matched_truths}/{len(self.truths)}, "
            f"precision {self.matched_regions}/{len(self.detected)}, "
            f"F={self.f_score:.2f}"
        )
        if self.coverage < 1.0:
            out += f" (at {self.coverage:.0%} sampling coverage)"
        return out


def score_detection(
    report: VarianceReport,
    faults,
    machine: MachineConfig,
    min_cells: int = 2,
    slack_windows: float = 1.0,
    sensor_types: tuple[SensorType, ...] | None = None,
) -> QualityScore:
    """Score a report against the injected faults.

    ``slack_windows`` widens time matching by that many matrix windows —
    slice/window quantization legitimately shifts region edges.

    ``sensor_types`` restricts scoring to those components.  A CPU fault
    also produces secondary network-wait regions on the ranks stalled
    behind the slowed ones; when the question is "was the fault itself
    localized", score only the component the fault perturbs directly.
    """
    truths = ground_truth_of(faults, machine, report.total_time_us)
    regions = [r for r in report.regions if r.cells >= min_cells]
    if sensor_types is not None:
        truths = [t for t in truths if t.sensor_type in sensor_types]
        regions = [r for r in regions if r.sensor_type in sensor_types]
    slack = slack_windows * report.window_us

    score = QualityScore(
        truths=truths,
        detected=regions,
        coverage=getattr(report, "sampling_coverage", 1.0),
    )
    for truth in truths:
        if any(truth.overlaps(region, slack) for region in regions):
            score.matched_truths += 1
    for region in regions:
        if any(truth.overlaps(region, slack) for truth in truths):
            score.matched_regions += 1
    return score
