"""The analysis server: inter-process detection and matrices (§5.4–§5.5).

A dedicated process collects slice summaries from every rank.  To stay
network-friendly, each rank buffers summaries locally and ships them in
periodic batches; the server accounts the bytes it receives (the §6.4 data
volume comparison against tracing).  The server

* merges same-type sensors into per-component performance series (§5.2),
* compares the same sensor across ranks per time window (inter-process
  detection), and
* maintains the process x time performance matrix per component that the
  visualizer renders (§5.5).

Delivery hardening: batches may arrive over an unreliable transport
(:mod:`repro.runtime.channel`), so ingestion is **idempotent** and
**order-invariant**.  Sequence-numbered batches are deduplicated against a
per-rank watermark (at-least-once delivery upstream, exactly-once effect
here), and every accepted summary is keyed by its identity ``(rank,
sensor, group, slice)`` rather than folded into running aggregates.  The
matrices and inter-process verdicts are computed by replaying the keyed
store in canonical slice order, which makes them bit-identical under any
permutation or redelivery of the incoming batches.

Two analysis engines share those semantics:

* ``engine="columnar"`` (default) keeps the store as append-only NumPy
  columns (:mod:`repro.runtime.columnar`) with incremental canonical
  replay and vectorized matrix / inter-process kernels;
* ``engine="reference"`` is the original object-at-a-time dict store and
  pure-Python full replay, kept as the differential-testing oracle.

The two are bit-identical — same matrices, events, counters and byte
accounting — under any delivery schedule; ``tests/runtime/
test_server_columnar.py`` pins that with hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.runtime.columnar import ColumnarStore
from repro.runtime.history import SensorHistory
from repro.runtime.records import SENSOR_TYPE_CODE, SliceSummary, SummaryColumns
from repro.runtime.seqtrack import SequenceTracker
from repro.sensors.model import SensorType


@dataclass(frozen=True, slots=True)
class InterProcessEvent:
    """Some ranks run a sensor significantly slower than the best rank."""

    sensor_id: int
    sensor_type: SensorType
    window_index: int
    t_window_start: float
    slow_ranks: tuple[int, ...]
    #: normalized performance of the slowest flagged rank
    worst_performance: float
    #: fraction of ranks that contributed data to this (sensor, window)
    #: cell — below 1.0 the verdict rests on partial telemetry (dropped
    #: batches, degraded ranks), so treat it with less confidence
    coverage: float = 1.0


@dataclass(slots=True)
class _Analysis:
    """Derived state replayed from the summary store (cached per epoch)."""

    #: (type, window) -> rank -> [normalized perf per slice]
    cells: dict[tuple[SensorType, int], dict[int, list[float]]] = field(default_factory=dict)
    #: (sensor, window) -> rank -> mean duration of the rank's slices
    per_sensor: dict[tuple[int, int], dict[int, float]] = field(default_factory=dict)
    history: SensorHistory = field(default_factory=SensorHistory)


@dataclass(slots=True)
class AnalysisServer:
    n_ranks: int
    #: matrix time resolution (µs); the paper's Fig. 14 uses 200 ms
    window_us: float = 200_000.0
    #: batching period per rank (µs)
    batch_period_us: float = 100_000.0
    threshold: float = 0.7
    #: analysis engine: "columnar" (vectorized store + incremental replay)
    #: or "reference" (object-at-a-time dict store, the oracle)
    engine: str = "columnar"

    bytes_received: int = 0
    batches_received: int = 0
    summaries_received: int = 0
    #: redelivered batches rejected by the sequence watermark
    duplicate_batches: int = 0
    #: summaries whose identity key was already in the store
    duplicate_summaries: int = 0
    inter_events: list[InterProcessEvent] = field(default_factory=list)
    #: ranks whose transport gave up on them (quiet spool, exhausted
    #: retries); matrices still render, reports carry the marker
    degraded: set[int] = field(default_factory=set)
    #: optional :class:`~repro.obs.metrics.MetricsRegistry` for ingest
    #: counters; ``None`` keeps ingestion at one extra branch
    metrics: object | None = None
    #: optional :class:`~repro.obs.Obs` bundle for per-epoch replay spans
    obs: object | None = None

    #: identity-keyed summary store: (rank, sensor, group, slice) -> summary
    #: (reference engine only; the columnar engine stores rows in _columns)
    _store: dict[tuple[int, int, str, int], SliceSummary] = field(default_factory=dict)
    #: per-rank sequence trackers (cumulative watermark + gap set)
    _seqs: dict[int, SequenceTracker] = field(default_factory=dict)
    _max_window: int = 0
    _sensor_types: dict[int, SensorType] = field(default_factory=dict)
    #: virtual time of the freshest slice each rank has reported
    _last_seen: dict[int, float] = field(default_factory=dict)
    _analysis: _Analysis | None = None
    _columns: ColumnarStore | None = None

    def __post_init__(self) -> None:
        if self.engine == "columnar":
            self._columns = ColumnarStore(self.window_us)
        elif self.engine != "reference":
            raise ValueError(
                f"unknown analysis engine {self.engine!r} (expected 'columnar' or 'reference')"
            )

    # -- ingestion ----------------------------------------------------------

    def receive_batch(
        self,
        rank: int,
        summaries: list[SliceSummary],
        seq: int | None = None,
        encoded_bytes: int | None = None,
    ) -> bool:
        """One batched transfer from a rank's local buffer.

        ``seq`` is the rank's batch sequence number when the batch came over
        a sequenced transport; redelivered sequence numbers are counted and
        dropped (idempotent ingest).  ``encoded_bytes`` is the actual wire
        size when the batch arrived through the codec (frame headers and
        group-definition frames included); direct in-process handoffs leave
        it ``None`` and are accounted at the nominal header + payload size.
        Returns True iff the batch was new.
        """
        self.batches_received += 1
        if encoded_bytes is None:
            encoded_bytes = 8 + SliceSummary.WIRE_BYTES * len(summaries)
        self.bytes_received += encoded_bytes
        if seq is not None and not self._advance_watermark(rank, seq):
            self.duplicate_batches += 1
            if self.metrics is not None:
                self.metrics.counter("server.duplicate_batches").inc()
            return False
        self.summaries_received += len(summaries)
        if self.metrics is not None:
            self.metrics.counter("server.batches").inc()
            self.metrics.counter("server.summaries").inc(len(summaries))
        if self._columns is not None:
            duplicates, max_window = self._columns.ingest_summaries(
                summaries, self._sensor_types, self._last_seen
            )
            self._note_ingest(duplicates, max_window)
        else:
            for summary in summaries:
                self._ingest(summary)
        return True

    def receive_batch_columns(
        self,
        rank: int,
        columns: SummaryColumns,
        seq: int | None = None,
        encoded_bytes: int | None = None,
    ) -> bool:
        """Like :meth:`receive_batch`, for a zero-copy decoded batch.

        The columnar engine ingests the arrays directly; the reference
        engine materializes :class:`SliceSummary` objects first so its
        per-summary ``_ingest`` path (and any test hook overriding it)
        stays on the wire path.
        """
        self.batches_received += 1
        if encoded_bytes is None:
            encoded_bytes = 8 + SliceSummary.WIRE_BYTES * len(columns)
        self.bytes_received += encoded_bytes
        if seq is not None and not self._advance_watermark(rank, seq):
            self.duplicate_batches += 1
            if self.metrics is not None:
                self.metrics.counter("server.duplicate_batches").inc()
            return False
        self.summaries_received += len(columns)
        if self.metrics is not None:
            self.metrics.counter("server.batches").inc()
            self.metrics.counter("server.summaries").inc(len(columns))
        if self._columns is not None:
            duplicates, max_window = self._columns.ingest_columns(
                columns, self._sensor_types, self._last_seen
            )
            self._note_ingest(duplicates, max_window)
        else:
            for summary in columns.to_summaries():
                self._ingest(summary)
        return True

    def _note_ingest(self, duplicates: int, max_window: int | None) -> None:
        """Fold one columnar ingest's outcome into the server counters."""
        if duplicates:
            self.duplicate_summaries += duplicates
            if self.metrics is not None:
                self.metrics.counter("server.duplicate_summaries").inc(duplicates)
        if max_window is not None and max_window > self._max_window:
            self._max_window = max_window

    def _advance_watermark(self, rank: int, seq: int) -> bool:
        """Record one received sequence number; False if already seen."""
        tracker = self._seqs.get(rank)
        if tracker is None:
            tracker = self._seqs[rank] = SequenceTracker()
        return tracker.accept(seq)

    def ack_watermark(self, rank: int) -> int:
        """Highest sequence number below which everything arrived."""
        tracker = self._seqs.get(rank)
        return -1 if tracker is None else tracker.watermark

    def is_acked(self, rank: int, seq: int) -> bool:
        tracker = self._seqs.get(rank)
        return tracker is not None and tracker.is_acked(seq)

    def _ingest(self, summary: SliceSummary) -> None:
        key = summary.identity
        if key in self._store:
            self.duplicate_summaries += 1
            if self.metrics is not None:
                self.metrics.counter("server.duplicate_summaries").inc()
            return
        self._store[key] = summary
        self._analysis = None
        self._max_window = max(self._max_window, int(summary.t_slice_start // self.window_us))
        self._sensor_types[summary.sensor_id] = summary.sensor_type
        last = self._last_seen.get(summary.rank)
        if last is None or summary.t_slice_start > last:
            self._last_seen[summary.rank] = summary.t_slice_start

    @property
    def stored_summaries(self) -> int:
        """Deduplicated summaries currently in the store (either engine)."""
        if self._columns is not None:
            return len(self._columns)
        return len(self._store)

    def export_rows(self, start: int = 0) -> tuple[list[SliceSummary], int]:
        """Stored summaries from insertion position ``start`` onward.

        The store is append-only (deduplicated rows are never reordered or
        removed), so ``(rows, total)`` lets a caller keep a cursor and pull
        only the delta on each call — the shard → query-merger gather path
        of the sharded analysis service."""
        if self._columns is not None:
            total = len(self._columns)
            return self._columns.export_summaries(start, total), total
        rows = list(self._store.values())
        return rows[start:], len(rows)

    # -- degradation / coverage --------------------------------------------

    def mark_degraded(self, rank: int) -> None:
        self.degraded.add(rank)

    def silent_ranks(self, now: float, staleness_us: float | None = None) -> list[int]:
        """Ranks whose freshest data is older than ``staleness_us`` —
        candidates for degraded marking when their spool goes quiet."""
        if staleness_us is None:
            staleness_us = 4.0 * self.batch_period_us
        out = []
        for rank in range(self.n_ranks):
            last = self._last_seen.get(rank)
            if last is None or now - last > staleness_us:
                out.append(rank)
        return out

    # -- canonical replay ---------------------------------------------------

    def _replay(self) -> _Analysis:
        """Build derived state by replaying the store in canonical order.

        The store is keyed, so the replay order is a function of the data
        only — identical matrices for any batch arrival order.  Canonical
        order is slice-major (virtual time), matching how a loss-free
        in-order run would have fed the online history.
        """
        if self._analysis is not None:
            return self._analysis
        analysis = _Analysis()
        history = analysis.history
        totals: dict[tuple[int, int], dict[int, list[float]]] = {}
        # Slice-major (virtual-time) order, then rank/sensor/group as the
        # deterministic tiebreak.
        for key in sorted(self._store, key=lambda k: (k[3], k[0], k[1], k[2])):
            summary = self._store[key]
            window = int(summary.t_slice_start // self.window_us)
            perf = history.observe(summary.sensor_id, summary.group, summary.mean_duration)
            analysis.cells.setdefault((summary.sensor_type, window), {}).setdefault(
                summary.rank, []
            ).append(perf)
            totals.setdefault((summary.sensor_id, window), {}).setdefault(
                summary.rank, []
            ).append(summary.mean_duration)
        for sensor_window, per_rank in totals.items():
            analysis.per_sensor[sensor_window] = {
                rank: float(np.mean(values)) for rank, values in per_rank.items()
            }
        self._analysis = analysis
        return analysis

    def _replay_columnar(self) -> ColumnarStore:
        """Bring the columnar store's canonical order up to date.

        Emits a ``server.replay`` span (kind + rows attrs) and bumps the
        ``server.replay.{full,incremental}`` counter — only when the store
        actually had pending rows, so pure queries stay silent.
        """
        store = self._columns
        assert store is not None
        if not store.pending():
            return store
        if self.obs is not None:
            with self.obs.tracer.span("server.replay") as span:
                kind, rows = store.replay()
                span.set("kind", kind)
                span.set("rows", rows)
        else:
            kind, _ = store.replay()
        if self.metrics is not None:
            self.metrics.counter(f"server.replay.{kind}").inc()
        return store

    @property
    def history(self) -> SensorHistory:
        """Cross-rank standard times, as replayed from the current store."""
        if self._columns is not None:
            self._replay_columnar()
            return SensorHistory.from_standards(self._columns.history_standards())
        return self._replay().history

    # -- inter-process analysis (§5.4) --------------------------------------

    def detect_inter_process(self, min_ranks: int = 2) -> list[InterProcessEvent]:
        """Compare the same v-sensor across ranks within each window."""
        self.inter_events = []
        if self._columns is not None:
            store = self._replay_columnar()
            blocks = store.inter_blocks()
        else:
            analysis = self._replay()
            blocks = (
                (
                    sensor_id,
                    window,
                    np.array(sorted(per_rank)),
                    np.array([per_rank[rank] for rank in sorted(per_rank)]),
                )
                for (sensor_id, window), per_rank in sorted(analysis.per_sensor.items())
            )
        for sensor_id, window, ranks, durations in blocks:
            if len(ranks) < min_ranks:
                continue
            best = durations.min()
            if best <= 0:
                continue
            perf = best / durations
            slow_mask = perf < self.threshold
            if not slow_mask.any():
                continue
            self.inter_events.append(
                InterProcessEvent(
                    sensor_id=sensor_id,
                    sensor_type=self._sensor_type_of(sensor_id),
                    window_index=window,
                    t_window_start=window * self.window_us,
                    slow_ranks=tuple(int(r) for r in ranks[slow_mask]),
                    worst_performance=float(perf.min()),
                    coverage=len(ranks) / self.n_ranks if self.n_ranks else 1.0,
                )
            )
        return self.inter_events

    def _sensor_type_of(self, sensor_id: int) -> SensorType:
        return self._sensor_types.get(sensor_id, SensorType.COMPUTATION)

    # -- matrices (§5.5) -------------------------------------------------------

    def performance_matrix(self, sensor_type: SensorType) -> np.ndarray:
        """(n_ranks, n_windows) matrix of normalized performance.

        Cells without data are NaN; the visualizer paints them neutrally.
        Degraded ranks simply keep their NaN cells — partial telemetry
        must never crash matrix rendering.
        """
        n_windows = self._max_window + 1
        if self._columns is not None:
            store = self._replay_columnar()
            return store.matrix(SENSOR_TYPE_CODE[sensor_type], self.n_ranks, n_windows)
        analysis = self._replay()
        matrix = np.full((self.n_ranks, n_windows), np.nan)
        for (stype, window), ranks in analysis.cells.items():
            if stype is not sensor_type:
                continue
            for rank, values in ranks.items():
                matrix[rank, window] = float(np.mean(values))
        return matrix

    def mean_rank_performance(self, sensor_type: SensorType) -> np.ndarray:
        """Per-rank mean normalized performance (persistent-fault signal)."""
        matrix = self.performance_matrix(sensor_type)
        with np.errstate(invalid="ignore"):
            return np.nanmean(matrix, axis=1)
