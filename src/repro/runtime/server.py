"""The analysis server: inter-process detection and matrices (§5.4–§5.5).

A dedicated process collects slice summaries from every rank.  To stay
network-friendly, each rank buffers summaries locally and ships them in
periodic batches; the server accounts the bytes it receives (the §6.4 data
volume comparison against tracing).  The server

* merges same-type sensors into per-component performance series (§5.2),
* compares the same sensor across ranks per time window (inter-process
  detection), and
* maintains the process x time performance matrix per component that the
  visualizer renders (§5.5).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.history import SensorHistory
from repro.runtime.records import SliceSummary
from repro.sensors.model import SensorType


@dataclass(frozen=True, slots=True)
class InterProcessEvent:
    """Some ranks run a sensor significantly slower than the best rank."""

    sensor_id: int
    sensor_type: SensorType
    window_index: int
    t_window_start: float
    slow_ranks: tuple[int, ...]
    #: normalized performance of the slowest flagged rank
    worst_performance: float


@dataclass(slots=True)
class AnalysisServer:
    n_ranks: int
    #: matrix time resolution (µs); the paper's Fig. 14 uses 200 ms
    window_us: float = 200_000.0
    #: batching period per rank (µs)
    batch_period_us: float = 100_000.0
    threshold: float = 0.7

    bytes_received: int = 0
    batches_received: int = 0
    summaries_received: int = 0
    #: global (cross-rank) standard times per sensor
    history: SensorHistory = field(default_factory=SensorHistory)
    #: (type, window) -> rank -> [perf values]
    _cells: dict[tuple[SensorType, int], dict[int, list[float]]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(list))
    )
    #: (sensor, window) -> rank -> mean duration (for inter-process compare)
    _per_sensor: dict[tuple[int, int], dict[int, float]] = field(
        default_factory=lambda: defaultdict(dict)
    )
    inter_events: list[InterProcessEvent] = field(default_factory=list)
    _max_window: int = 0
    _sensor_types: dict[int, SensorType] = field(default_factory=dict)

    def receive_batch(self, rank: int, summaries: list[SliceSummary]) -> None:
        """One batched transfer from a rank's local buffer."""
        self.batches_received += 1
        self.bytes_received += 8 + SliceSummary.WIRE_BYTES * len(summaries)
        self.summaries_received += len(summaries)
        for summary in summaries:
            self._ingest(summary)

    def _ingest(self, summary: SliceSummary) -> None:
        window = int(summary.t_slice_start // self.window_us)
        self._max_window = max(self._max_window, window)
        self._sensor_types[summary.sensor_id] = summary.sensor_type
        perf = self.history.observe(summary.sensor_id, summary.group, summary.mean_duration)
        self._cells[(summary.sensor_type, window)][summary.rank].append(perf)
        sensor_window = self._per_sensor[(summary.sensor_id, window)]
        prev = sensor_window.get(summary.rank)
        # Keep the mean duration of the rank's slices in this window.
        sensor_window[summary.rank] = (
            summary.mean_duration if prev is None else 0.5 * (prev + summary.mean_duration)
        )

    # -- inter-process analysis (§5.4) --------------------------------------

    def detect_inter_process(self, min_ranks: int = 2) -> list[InterProcessEvent]:
        """Compare the same v-sensor across ranks within each window."""
        self.inter_events = []
        for (sensor_id, window), per_rank in sorted(self._per_sensor.items()):
            if len(per_rank) < min_ranks:
                continue
            durations = np.array(list(per_rank.values()))
            ranks = np.array(list(per_rank.keys()))
            best = durations.min()
            if best <= 0:
                continue
            perf = best / durations
            slow_mask = perf < self.threshold
            if not slow_mask.any():
                continue
            sensor_type = self._sensor_type_of(sensor_id)
            self.inter_events.append(
                InterProcessEvent(
                    sensor_id=sensor_id,
                    sensor_type=sensor_type,
                    window_index=window,
                    t_window_start=window * self.window_us,
                    slow_ranks=tuple(int(r) for r in np.sort(ranks[slow_mask])),
                    worst_performance=float(perf.min()),
                )
            )
        return self.inter_events

    def _sensor_type_of(self, sensor_id: int) -> SensorType:
        return self._sensor_types.get(sensor_id, SensorType.COMPUTATION)

    # -- matrices (§5.5) -------------------------------------------------------

    def performance_matrix(self, sensor_type: SensorType) -> np.ndarray:
        """(n_ranks, n_windows) matrix of normalized performance.

        Cells without data are NaN; the visualizer paints them neutrally.
        """
        n_windows = self._max_window + 1
        matrix = np.full((self.n_ranks, n_windows), np.nan)
        for (stype, window), ranks in self._cells.items():
            if stype is not sensor_type:
                continue
            for rank, values in ranks.items():
                matrix[rank, window] = float(np.mean(values))
        return matrix

    def mean_rank_performance(self, sensor_type: SensorType) -> np.ndarray:
        """Per-rank mean normalized performance (persistent-fault signal)."""
        matrix = self.performance_matrix(sensor_type)
        with np.errstate(invalid="ignore"):
            return np.nanmean(matrix, axis=1)
