"""Time-slice aggregation (§5.1).

High-frequency, short-duration OS noise makes very short sensors look
chaotic; averaging over a small time slice (1000 µs by default) filters it
so that only durable variance remains.  Aggregation also bounds analysis
cost: the detection algorithm runs once per slice, not once per record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.records import SensorRecord, SliceSummary
from repro.sensors.model import SensorType


#: shared result for the no-rollover case — callers only iterate it, and it
#: saves a list allocation on every record between slice boundaries
_NO_SUMMARIES: tuple[SliceSummary, ...] = ()


@dataclass(slots=True)
class SliceAggregator:
    """Per-rank streaming aggregator.

    Records for each (sensor, group) are accumulated until a record falls
    into a later slice, at which point the finished slice is emitted.  The
    stream is time-ordered per rank by construction (the rank's own clock).

    The open slice per key is a mutable ``[slice_index, total_duration,
    total_miss, count]`` list updated in place: the common case (another
    record landing in the same slice) allocates nothing.
    """

    rank: int
    slice_us: float = 1000.0
    _open: dict[tuple[int, str], list] = field(default_factory=dict)
    _types: dict[int, SensorType] = field(default_factory=dict)

    def add(self, record: SensorRecord) -> tuple[SliceSummary, ...]:
        """Feed one record; return any slice summaries completed by it."""
        key = (record.sensor_id, record.group)
        idx = int(record.t_end // self.slice_us)
        entry = self._open.get(key)
        if entry is not None and entry[0] == idx:
            entry[1] += record.duration
            entry[2] += record.cache_miss_rate
            entry[3] += 1
            return _NO_SUMMARIES
        self._types[record.sensor_id] = record.sensor_type
        self._open[key] = [idx, record.duration, record.cache_miss_rate, 1]
        if entry is None:
            return _NO_SUMMARIES
        return (self._emit(key, entry),)

    def flush(self) -> list[SliceSummary]:
        """Emit every open slice (end of run)."""
        emitted = [self._emit(key, entry) for key, entry in self._open.items()]
        self._open.clear()
        return emitted

    def _emit(self, key: tuple[int, str], entry: list) -> SliceSummary:
        sensor_id, group = key
        idx, total_duration, total_miss, count = entry
        return SliceSummary(
            rank=self.rank,
            sensor_id=sensor_id,
            sensor_type=self._types[sensor_id],
            group=group,
            slice_index=idx,
            t_slice_start=idx * self.slice_us,
            mean_duration=total_duration / count,
            count=count,
            mean_cache_miss=total_miss / count,
        )
