"""Time-slice aggregation (§5.1).

High-frequency, short-duration OS noise makes very short sensors look
chaotic; averaging over a small time slice (1000 µs by default) filters it
so that only durable variance remains.  Aggregation also bounds analysis
cost: the detection algorithm runs once per slice, not once per record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.records import SensorRecord, SliceSummary
from repro.sensors.model import SensorType


@dataclass(slots=True)
class _SliceAccum:
    total_duration: float = 0.0
    total_miss: float = 0.0
    count: int = 0


@dataclass(slots=True)
class SliceAggregator:
    """Per-rank streaming aggregator.

    Records for each (sensor, group) are accumulated until a record falls
    into a later slice, at which point the finished slice is emitted.  The
    stream is time-ordered per rank by construction (the rank's own clock).
    """

    rank: int
    slice_us: float = 1000.0
    _open: dict[tuple[int, str], tuple[int, _SliceAccum]] = field(default_factory=dict)
    _types: dict[int, SensorType] = field(default_factory=dict)

    def add(self, record: SensorRecord) -> list[SliceSummary]:
        """Feed one record; return any slice summaries completed by it."""
        self._types[record.sensor_id] = record.sensor_type
        key = (record.sensor_id, record.group)
        idx = int(record.t_end // self.slice_us)
        emitted: list[SliceSummary] = []
        open_entry = self._open.get(key)
        if open_entry is not None and open_entry[0] != idx:
            emitted.append(self._emit(key, *open_entry))
            open_entry = None
        if open_entry is None:
            open_entry = (idx, _SliceAccum())
            self._open[key] = open_entry
        accum = open_entry[1]
        accum.total_duration += record.duration
        accum.total_miss += record.cache_miss_rate
        accum.count += 1
        return emitted

    def flush(self) -> list[SliceSummary]:
        """Emit every open slice (end of run)."""
        emitted = [self._emit(key, idx, accum) for key, (idx, accum) in self._open.items()]
        self._open.clear()
        return emitted

    def _emit(self, key: tuple[int, str], idx: int, accum: _SliceAccum) -> SliceSummary:
        sensor_id, group = key
        return SliceSummary(
            rank=self.rank,
            sensor_id=sensor_id,
            sensor_type=self._types[sensor_id],
            group=group,
            slice_index=idx,
            t_slice_start=idx * self.slice_us,
            mean_duration=accum.total_duration / accum.count,
            count=accum.count,
            mean_cache_miss=accum.total_miss / accum.count,
        )
