"""The final variance report (workflow steps 7–8, §5.5).

The report carries the per-component performance matrices, clustered
variance regions ("white blocks": contiguous time x rank areas of low
normalized performance), per-rank mean performance (persistent bad-node
signal), and data-volume accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.sensors.model import SensorType

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.vsensor_hooks import VSensorRuntime


@dataclass(frozen=True, slots=True)
class VarianceRegion:
    """A clustered low-performance area of one component's matrix."""

    sensor_type: SensorType
    rank_lo: int
    rank_hi: int
    t_start_us: float
    t_end_us: float
    mean_performance: float
    cells: int

    def describe(self) -> str:
        return (
            f"{self.sensor_type.value}: ranks {self.rank_lo}-{self.rank_hi}, "
            f"t={self.t_start_us / 1e6:.1f}s..{self.t_end_us / 1e6:.1f}s, "
            f"perf={self.mean_performance:.2f}"
        )


@dataclass(slots=True)
class VarianceReport:
    n_ranks: int
    total_time_us: float
    matrices: dict[SensorType, np.ndarray] = field(default_factory=dict)
    window_us: float = 200_000.0
    regions: list[VarianceRegion] = field(default_factory=list)
    #: per-rank mean normalized performance per component
    rank_means: dict[SensorType, np.ndarray] = field(default_factory=dict)
    intra_events: int = 0
    inter_events: int = 0
    bytes_to_server: int = 0
    batches_to_server: int = 0
    shutoff_sensors: int = 0
    #: transport hardening: redelivered batches the server deduplicated
    duplicate_batches: int = 0
    #: ranks whose delivery gave up (quiet spool / exhausted retries)
    degraded_ranks: tuple[int, ...] = ()
    #: mean per-event coverage fraction of the inter-process verdicts —
    #: below 1.0 some verdicts rest on partial telemetry
    coverage_confidence: float = 1.0
    #: channel delivery counters when a lossy channel was simulated
    channel_stats: dict[str, int] | None = None
    #: fraction of probe executions represented in analysis output under
    #: governor sampling/suspension (1.0 = every execution recorded or
    #: statistically represented by a kept 1-in-N sibling)
    sampling_coverage: float = 1.0
    #: governor decision totals (demote/promote/suspend/resample) when a
    #: governor ran; ``None`` otherwise
    governor_decisions: dict[str, int] | None = None
    #: (rank, sensor) pairs left suspended by the governor at end of run
    governor_suspended: int = 0

    def data_rate_kb_per_s(self) -> float:
        """Average per-process data generation rate (the §6.4 comparison)."""
        seconds = self.total_time_us / 1e6
        if seconds <= 0 or self.n_ranks == 0:
            return 0.0
        return self.bytes_to_server / 1024.0 / seconds / self.n_ranks

    def suspect_ranks(self, sensor_type: SensorType, threshold: float = 0.8) -> list[int]:
        """Ranks whose mean performance is persistently low — the bad-node
        signal of Fig. 21."""
        means = self.rank_means.get(sensor_type)
        if means is None:
            return []
        overall = np.nanmedian(means)
        out = []
        for rank, value in enumerate(means):
            if np.isfinite(value) and value < threshold * overall:
                out.append(rank)
        return out

    def summary(self) -> str:
        lines = [
            f"vSensor variance report — {self.n_ranks} ranks, "
            f"{self.total_time_us / 1e6:.2f}s",
            f"  intra-process variance events: {self.intra_events}",
            f"  inter-process variance events: {self.inter_events}",
            f"  data to analysis server: {self.bytes_to_server / 1024:.1f} KiB "
            f"({self.data_rate_kb_per_s():.3f} KB/s/process)",
        ]
        if self.channel_stats is not None:
            stats = self.channel_stats
            lines.append(
                "  transport: "
                + " ".join(f"{key}={stats[key]}" for key in sorted(stats))
            )
        if self.duplicate_batches:
            lines.append(f"  deduplicated batches: {self.duplicate_batches}")
        if self.degraded_ranks:
            lines.append(f"  degraded ranks: {list(self.degraded_ranks)}")
        if self.coverage_confidence < 1.0:
            lines.append(f"  inter-event coverage confidence: {self.coverage_confidence:.2f}")
        if self.governor_decisions is not None:
            decisions = self.governor_decisions
            lines.append(
                "  governor: "
                + " ".join(f"{key}={decisions[key]}" for key in sorted(decisions))
                + f" suspended={self.governor_suspended}"
                + f" coverage={self.sampling_coverage:.3f}"
            )
        for region in self.regions[:20]:
            lines.append("  variance: " + region.describe())
        return "\n".join(lines)


def cluster_low_cells(
    matrix: np.ndarray,
    sensor_type: SensorType,
    window_us: float,
    threshold: float = 0.7,
) -> list[VarianceRegion]:
    """Greedy rectangle clustering of below-threshold cells.

    Finds 4-connected components of low cells and reports each component's
    bounding box — precise enough to localize "which ranks, when" as the
    paper's case studies require.
    """
    low = np.isfinite(matrix) & (matrix < threshold)
    if not low.any():
        return []
    visited = np.zeros_like(low, dtype=bool)
    regions: list[VarianceRegion] = []
    n_ranks, n_windows = low.shape
    for r in range(n_ranks):
        for w in range(n_windows):
            if not low[r, w] or visited[r, w]:
                continue
            # BFS flood fill.
            stack = [(r, w)]
            visited[r, w] = True
            cells: list[tuple[int, int]] = []
            while stack:
                cr, cw = stack.pop()
                cells.append((cr, cw))
                for nr, nw in ((cr - 1, cw), (cr + 1, cw), (cr, cw - 1), (cr, cw + 1)):
                    if 0 <= nr < n_ranks and 0 <= nw < n_windows and low[nr, nw] and not visited[nr, nw]:
                        visited[nr, nw] = True
                        stack.append((nr, nw))
            rows = [c[0] for c in cells]
            cols = [c[1] for c in cells]
            values = [matrix[c] for c in cells]
            regions.append(
                VarianceRegion(
                    sensor_type=sensor_type,
                    rank_lo=min(rows),
                    rank_hi=max(rows),
                    t_start_us=min(cols) * window_us,
                    t_end_us=(max(cols) + 1) * window_us,
                    mean_performance=float(np.mean(values)),
                    cells=len(cells),
                )
            )
    regions.sort(key=lambda region: -region.cells)
    return regions


def build_report(runtime: "VSensorRuntime", total_time: float) -> VarianceReport:
    # runtime.server may be a transport proxy; the report reads the real one.
    server = getattr(runtime.server, "server", runtime.server)
    events = server.inter_events
    report = VarianceReport(
        n_ranks=runtime.n_ranks,
        total_time_us=total_time,
        window_us=server.window_us,
        intra_events=len(runtime.events),
        inter_events=len(events),
        bytes_to_server=server.bytes_received,
        batches_to_server=server.batches_received,
        shutoff_sensors=sum(len(d.shutoff) for d in runtime.detectors.values()),
        duplicate_batches=server.duplicate_batches,
        degraded_ranks=tuple(sorted(server.degraded)),
        coverage_confidence=(
            float(np.mean([event.coverage for event in events])) if events else 1.0
        ),
    )
    governor = getattr(runtime, "governor", None)
    if governor is not None:
        report.sampling_coverage = governor.coverage()
        report.governor_decisions = governor.totals()
        report.governor_suspended = governor.suspended_sensors()
    for sensor_type in SensorType:
        matrix = server.performance_matrix(sensor_type)
        if np.isfinite(matrix).any():
            report.matrices[sensor_type] = matrix
            report.rank_means[sensor_type] = server.mean_rank_performance(sensor_type)
            report.regions.extend(
                cluster_low_cells(matrix, sensor_type, server.window_us)
            )
    report.regions.sort(key=lambda region: -region.cells)
    return report
