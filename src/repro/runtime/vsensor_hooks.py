"""The vSensor dynamic module packaged as simulator hooks.

One :class:`RankDetector` per rank performs smoothing, history comparison
and intra-process detection online; slice summaries are buffered per rank
and shipped to the :class:`AnalysisServer` in periodic batches (§5.4).
The report object (§5.5) is assembled at the end of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.instrument.rewrite import SensorInfo
from repro.obs import NULL_OBS, Obs
from repro.runtime.detector import DetectorConfig, RankDetector, VarianceEvent
from repro.runtime.dynrules import DynamicRule, NoGrouping
from repro.runtime.records import SensorRecord
from repro.runtime.report import VarianceReport, build_report
from repro.runtime.server import AnalysisServer
from repro.sim.hooks import RuntimeHooks
from repro.sim.pmu import PmuSample


@dataclass(slots=True)
class VSensorRuntime(RuntimeHooks):
    """Install on a simulated run to perform online variance detection."""

    sensors: dict[int, SensorInfo]
    n_ranks: int
    config: DetectorConfig = field(default_factory=DetectorConfig)
    rule: DynamicRule = field(default_factory=NoGrouping)
    server: AnalysisServer = None  # type: ignore[assignment]
    detectors: dict[int, RankDetector] = field(default_factory=dict)
    #: per-rank outbound buffer and the virtual time of the last batch send
    _buffers: dict[int, list] = field(default_factory=dict)
    _last_batch: dict[int, float] = field(default_factory=dict)
    _summaries_seen: dict[int, int] = field(default_factory=dict)
    events: list[VarianceEvent] = field(default_factory=list)
    #: optional periodic reporter (workflow step 8's live updates)
    live: object | None = None
    #: optional :class:`~repro.runtime.governor.OverheadGovernor`; when set,
    #: detectors get governor-instrumented §5.3 lifecycles and every record /
    #: variance event feeds the budget loop
    governor: object | None = None
    #: observability bundle; the disabled default keeps the per-record
    #: path free of tracer work (detectors get ``metrics=None``)
    obs: Obs = field(default_factory=lambda: NULL_OBS)

    def __post_init__(self) -> None:
        if self.server is None:
            enabled = self.obs.enabled
            self.server = AnalysisServer(
                n_ranks=self.n_ranks,
                metrics=self.obs.metrics if enabled else None,
                obs=self.obs if enabled else None,
            )

    # -- hook interface ----------------------------------------------------

    def on_program_start(self, n_ranks: int) -> None:
        metrics = self.obs.metrics if self.obs.enabled else None
        gov = self.governor
        for rank in range(n_ranks):
            self.detectors[rank] = RankDetector(
                rank=rank,
                config=self.config,
                rule=self.rule,
                metrics=metrics,
                lifecycle=gov.lifecycle(rank) if gov is not None else None,
            )
            self._buffers[rank] = []
            self._last_batch[rank] = 0.0
            self._summaries_seen[rank] = 0

    def on_sensor_record(
        self, rank: int, sensor_id: int, t_start: float, t_end: float, pmu: PmuSample
    ) -> None:
        info = self.sensors.get(sensor_id)
        if info is None:
            return
        detector = self.detectors[rank]
        record = SensorRecord(
            rank=rank,
            sensor_id=sensor_id,
            sensor_type=info.sensor_type,
            t_start=t_start,
            t_end=t_end,
            instructions=pmu.instructions,
            cache_miss_rate=pmu.cache_miss_rate,
        )
        before = len(detector.summaries)
        new_events = detector.add(record)
        self.events.extend(new_events)
        gov = self.governor
        if gov is not None:
            gov.on_record(rank, t_end)
            if new_events:
                worst = min(new_events, key=lambda e: e.performance)
                gov.on_variance(rank, t_end, worst.performance, worst.sensor_type)
        self._enqueue_new_summaries(rank, detector, before, t_end)

    def on_program_end(self, rank: int, t: float) -> None:
        detector = self.detectors.get(rank)
        if detector is None:
            return
        before = len(detector.summaries)
        self.events.extend(detector.finish())
        self._enqueue_new_summaries(rank, detector, before, t, force=True)
        if self.obs.enabled:
            # One virtual-time leaf span per rank's detection lifetime.
            # Governor attrs appear only when a governor is installed so
            # governed runs never perturb ungoverned golden traces.
            attrs = dict(
                rank=rank,
                records=detector.records_processed,
                summaries=len(detector.summaries),
                events=len(detector.events),
                shutoff=len(detector.shutoff),
            )
            gov = self.governor
            if gov is not None:
                tally = gov.decisions.get(rank)
                if tally:
                    attrs.update(
                        demote=tally["demote"],
                        promote=tally["promote"],
                        suspend=tally["suspend"],
                    )
            self.obs.tracer.emit("runtime.rank_detector", 0.0, t, **attrs)

    # -- batching to the analysis server (§5.4) ------------------------------

    def _enqueue_new_summaries(
        self, rank: int, detector: RankDetector, before: int, now: float, force: bool = False
    ) -> None:
        new = detector.summaries[before:]
        if new:
            self._buffers[rank].extend(new)
        due = now - self._last_batch[rank] >= self.server.batch_period_us
        if (due or force) and self._buffers[rank]:
            # Time-aware transports (ReliableTransport) take the virtual
            # send time; the plain server keeps the two-argument form.
            send = getattr(self.server, "send_batch", None)
            if send is not None:
                send(rank, self._buffers[rank], now)
            else:
                self.server.receive_batch(rank, self._buffers[rank])
            if self.obs.enabled:
                self.obs.metrics.counter("runtime.batches_shipped").inc()
            self._buffers[rank] = []
            self._last_batch[rank] = now
            if self.live is not None:
                self.live.maybe_snapshot(self, now)

    # -- results -----------------------------------------------------------

    def report(self, total_time: float) -> VarianceReport:
        """Assemble the final variance report (workflow step 8 input)."""
        self.server.detect_inter_process()
        return build_report(self, total_time)
