"""The dynamic module: online performance-variance detection (Section 5).

Record flow, mirroring the paper's pipeline:

1. probe records arrive per rank (:mod:`repro.runtime.records`),
2. records are aggregated over small time slices to filter high-frequency
   OS noise (:mod:`repro.runtime.smoothing`, §5.1),
3. slice averages are normalized against the sensor's fastest observation
   — one scalar of history per sensor (:mod:`repro.runtime.history`, §5.2,
   §5.3) — optionally split by dynamic-rule groups
   (:mod:`repro.runtime.dynrules`),
4. each rank batches its slice summaries to the analysis server
   (:mod:`repro.runtime.server`, §5.4), which performs inter-process
   comparison and builds the per-component performance matrices the
   visualizer renders (§5.5).

Batch delivery is fault-tolerant: the message path can run over a seeded
lossy channel (:mod:`repro.runtime.channel`) with sequenced retrying
delivery (:mod:`repro.runtime.transport`), and the server's ingest is
idempotent and delivery-order invariant, so dropped / duplicated /
reordered batches never skew the matrices.

:class:`~repro.runtime.vsensor_hooks.VSensorRuntime` packages all of this
behind the simulator's hook interface.
"""

from repro.runtime.channel import ChannelConfig, ChannelStats, LossyChannel
from repro.runtime.columnar import ColumnarStore
from repro.runtime.detector import DetectorConfig, RankDetector, VarianceEvent
from repro.runtime.dynrules import (
    CacheMissBands,
    DynamicRule,
    InstructionBands,
    NoGrouping,
    ThresholdMiss,
)
from repro.runtime.history import SensorHistory, observe_block
from repro.runtime.records import SensorRecord, SliceSummary, SummaryColumns
from repro.runtime.report import VarianceReport
from repro.runtime.server import AnalysisServer, InterProcessEvent
from repro.runtime.smoothing import SliceAggregator
from repro.runtime.transport import FileSpool, ReliableTransport, RetryPolicy
from repro.runtime.vsensor_hooks import VSensorRuntime

__all__ = [
    "AnalysisServer",
    "CacheMissBands",
    "ChannelConfig",
    "ChannelStats",
    "ColumnarStore",
    "FileSpool",
    "InterProcessEvent",
    "LossyChannel",
    "ReliableTransport",
    "RetryPolicy",
    "DetectorConfig",
    "DynamicRule",
    "InstructionBands",
    "NoGrouping",
    "ThresholdMiss",
    "RankDetector",
    "SensorHistory",
    "SensorRecord",
    "SliceAggregator",
    "SliceSummary",
    "SummaryColumns",
    "VSensorRuntime",
    "VarianceEvent",
    "VarianceReport",
    "observe_block",
]
