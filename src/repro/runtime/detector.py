"""Per-rank online variance detection (§5.1–§5.3).

Each rank owns one detector.  Records from the rank's probes are grouped by
the active dynamic rule, smoothed into slice summaries, normalized against
per-sensor history, and checked against the variance threshold.  Sensors
whose executions are too short to time meaningfully are shut off at runtime
(their probes stop triggering analysis — the overhead guard of §5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.dynrules import DynamicRule, NoGrouping
from repro.runtime.governor import PaperShutoff
from repro.runtime.history import SensorHistory
from repro.runtime.records import SensorRecord, SliceSummary
from repro.runtime.smoothing import SliceAggregator
from repro.sensors.model import SensorType


@dataclass(frozen=True, slots=True)
class VarianceEvent:
    """One detected performance variance."""

    rank: int
    sensor_id: int
    sensor_type: SensorType
    group: str
    t_start: float
    #: normalized performance (1.0 = best; below threshold = variance)
    performance: float


@dataclass(slots=True)
class DetectorConfig:
    slice_us: float = 1000.0
    #: normalized performance below this is reported as variance
    threshold: float = 0.7
    #: sensors whose mean duration stays below this (µs) are shut off
    min_duration_us: float = 2.0
    #: how many records to observe before deciding on shutoff
    shutoff_after: int = 50


@dataclass(slots=True)
class RankDetector:
    rank: int
    config: DetectorConfig = field(default_factory=DetectorConfig)
    rule: DynamicRule = field(default_factory=NoGrouping)
    history: SensorHistory = field(default_factory=SensorHistory)
    events: list[VarianceEvent] = field(default_factory=list)
    summaries: list[SliceSummary] = field(default_factory=list)
    #: sensors disabled at runtime (too short, §5.3)
    shutoff: set[int] = field(default_factory=set)
    #: optional :class:`~repro.obs.metrics.MetricsRegistry`; ``None`` keeps
    #: the per-record hot path at a single branch
    metrics: object | None = None
    #: the §5.3 rule object; ``None`` builds a default sharing :attr:`shutoff`
    lifecycle: PaperShutoff | None = None
    _aggregator: SliceAggregator = None  # type: ignore[assignment]
    records_processed: int = 0

    def __post_init__(self) -> None:
        self._aggregator = SliceAggregator(rank=self.rank, slice_us=self.config.slice_us)
        if self.lifecycle is None:
            self.lifecycle = PaperShutoff(
                min_duration_us=self.config.min_duration_us,
                shutoff_after=self.config.shutoff_after,
                shutoff=self.shutoff,
            )
        else:
            self.shutoff = self.lifecycle.shutoff

    def add(self, record: SensorRecord) -> list[VarianceEvent]:
        """Feed one probe record; return any new variance events."""
        sid = record.sensor_id
        life = self.lifecycle
        if life.is_off(sid):
            return []
        self.records_processed += 1
        if self.metrics is not None:
            self.metrics.counter("detector.records").inc()
        if not life.observe(sid, record.duration):
            if self.metrics is not None:
                self.metrics.counter("detector.shutoff_sensors").inc()
            return []
        grouped = SensorRecord(
            rank=record.rank,
            sensor_id=record.sensor_id,
            sensor_type=record.sensor_type,
            t_start=record.t_start,
            t_end=record.t_end,
            instructions=record.instructions,
            cache_miss_rate=record.cache_miss_rate,
            group=self.rule.group(record),
        )
        new_events: list[VarianceEvent] = []
        for summary in self._aggregator.add(grouped):
            new_events.extend(self._analyze(summary))
        return new_events

    def finish(self) -> list[VarianceEvent]:
        """Flush open slices at the end of the run."""
        new_events: list[VarianceEvent] = []
        for summary in self._aggregator.flush():
            new_events.extend(self._analyze(summary))
        return new_events

    def _analyze(self, summary: SliceSummary) -> list[VarianceEvent]:
        self.summaries.append(summary)
        if self.metrics is not None:
            self.metrics.counter("detector.summaries").inc()
            self.metrics.histogram("detector.slice_duration_us").observe(
                summary.mean_duration
            )
        perf = self.history.observe(summary.sensor_id, summary.group, summary.mean_duration)
        if perf < self.config.threshold:
            event = VarianceEvent(
                rank=self.rank,
                sensor_id=summary.sensor_id,
                sensor_type=summary.sensor_type,
                group=summary.group,
                t_start=summary.t_slice_start,
                performance=perf,
            )
            self.events.append(event)
            if self.metrics is not None:
                self.metrics.counter("detector.variance_events").inc()
            return [event]
        return []
