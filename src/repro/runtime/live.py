"""Periodic (online) reporting — workflow step 8.

The paper emphasizes that detection is on-line: "the performance report is
updated periodically, thus users can notice performance variance without
waiting for a program to finish."  :class:`LiveReporter` implements that:
attached to a :class:`~repro.runtime.vsensor_hooks.VSensorRuntime`, it
snapshots the per-component matrices every ``period_us`` of *virtual* time
and hands each snapshot to a callback (print, write SVG, push to a
dashboard, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sensors.model import SensorType


@dataclass(slots=True)
class LiveSnapshot:
    """One periodic report."""

    virtual_time_us: float
    matrices: dict[SensorType, np.ndarray]
    intra_events: int
    #: low-performance cells per component at snapshot time
    low_cells: dict[SensorType, int] = field(default_factory=dict)
    #: delivery counters when batches travel over a simulated channel
    #: (sent / delivered / dropped / retried / duplicated / reordered / late)
    channel: dict[str, int] | None = None
    #: ranks the transport has marked degraded by snapshot time
    degraded_ranks: tuple[int, ...] = ()

    def has_variance(
        self, threshold_cells: int = 1, component: SensorType | None = None
    ) -> bool:
        if component is not None:
            return self.low_cells.get(component, 0) >= threshold_cells
        return any(count >= threshold_cells for count in self.low_cells.values())


@dataclass(slots=True)
class LiveReporter:
    """Attach to a runtime via ``runtime.live = reporter`` (or pass it to
    :func:`repro.api.run_vsensor` as ``live``)."""

    period_us: float = 100_000.0
    callback: Callable[[LiveSnapshot], None] | None = None
    threshold: float = 0.7
    snapshots: list[LiveSnapshot] = field(default_factory=list)
    _last: float = 0.0

    def maybe_snapshot(self, runtime, now: float) -> LiveSnapshot | None:
        """Called by the runtime as data arrives; snapshots when due."""
        if now - self._last < self.period_us:
            return None
        self._last = now
        snapshot = self._build(runtime, now)
        self.snapshots.append(snapshot)
        if self.callback is not None:
            self.callback(snapshot)
        return snapshot

    def _build(self, runtime, now: float) -> LiveSnapshot:
        matrices: dict[SensorType, np.ndarray] = {}
        low_cells: dict[SensorType, int] = {}
        for sensor_type in SensorType:
            matrix = runtime.server.performance_matrix(sensor_type)
            if np.isfinite(matrix).any():
                matrices[sensor_type] = matrix
                low_cells[sensor_type] = int(
                    (np.isfinite(matrix) & (matrix < self.threshold)).sum()
                )
        # runtime.server may be a ReliableTransport proxy; unwrap for the
        # degraded set and surface its channel counters when present.
        channel = getattr(runtime.server, "channel", None)
        server = getattr(runtime.server, "server", runtime.server)
        return LiveSnapshot(
            virtual_time_us=now,
            matrices=matrices,
            intra_events=len(runtime.events),
            low_cells=low_cells,
            channel=channel.stats.as_dict() if channel is not None else None,
            degraded_ranks=tuple(sorted(getattr(server, "degraded", ()))),
        )


def first_detection_time(
    reporter: LiveReporter,
    threshold_cells: int = 1,
    component: SensorType | None = None,
) -> float | None:
    """Virtual time of the first snapshot that showed variance — the
    "noticed before the program finished" metric.  Restrict to one
    ``component`` to ignore unrelated channels (e.g. collective wait-skew
    noise in the network matrix when hunting a CPU fault)."""
    for snapshot in reporter.snapshots:
        if snapshot.has_variance(threshold_cells, component):
            return snapshot.virtual_time_us
    return None
