"""A deterministic lossy-channel simulator for batch delivery (§5.4).

The paper ships sensor batches to the analysis server "by processes
sending messages to analysis-server or by updating shared files" — and
real deployments run that delivery over exactly the noisy infrastructure
the telemetry is meant to diagnose.  This module models the data path as
an unreliable channel that can **drop**, **duplicate**, **reorder** and
**delay** in-flight batches, with every decision drawn from a seeded RNG
so any failure pattern is exactly replayable.

The channel is payload-agnostic: it moves :class:`Envelope` objects
(rank, sequence number, opaque payload) and keeps per-channel counters
(sent / dropped / duplicated / reordered / delivered / retried / late)
that flow into live reports and the CLI.  Reliability on top of it —
retries, acks, idempotent ingest — lives in
:mod:`repro.runtime.transport` and :mod:`repro.runtime.server`.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field, replace

from repro.errors import ReproError


@dataclass(frozen=True, slots=True)
class ChannelConfig:
    """Fault model of the rank → server data path.

    All rates are independent per-send probabilities in [0, 1); delays are
    virtual microseconds.  ``seed`` makes the whole failure schedule
    deterministic — the same config produces the same drops on every run.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    #: base one-way latency
    delay_us: float = 200.0
    #: uniform extra latency in [0, jitter_us)
    jitter_us: float = 0.0
    #: extra latency applied to messages picked for reordering — large
    #: enough to leapfrog several batch periods
    reorder_delay_us: float = 250_000.0
    seed: int = 20180224

    _FIELDS = {
        "drop": "drop_rate",
        "dup": "dup_rate",
        "reorder": "reorder_rate",
        "delay": "delay_us",
        "jitter": "jitter_us",
        "reorder_delay": "reorder_delay_us",
        "seed": "seed",
    }

    @classmethod
    def parse(cls, spec: str) -> "ChannelConfig":
        """Parse a CLI spec like ``drop=0.1,dup=0.05,reorder=0.2,seed=7``.

        ``lossy`` is shorthand for the 10% drop + dup + reorder acceptance
        scenario; ``perfect`` is an explicit no-fault channel.
        """
        spec = spec.strip()
        if spec == "perfect":
            return cls()
        if spec == "lossy":
            return cls(drop_rate=0.1, dup_rate=0.1, reorder_rate=0.2)
        kwargs: dict[str, float | int] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            attr = cls._FIELDS.get(key.strip())
            if attr is None or not value:
                raise ReproError(
                    f"bad channel spec {spec!r}: expected KEY=VALUE with KEY in "
                    f"{sorted(cls._FIELDS)} (or 'lossy'/'perfect')"
                )
            kwargs[attr] = int(value) if attr == "seed" else float(value)
        for rate_attr in ("drop_rate", "dup_rate", "reorder_rate"):
            rate = kwargs.get(rate_attr, 0.0)
            if not 0.0 <= float(rate) < 1.0:
                raise ReproError(f"bad channel spec {spec!r}: {rate_attr} must be in [0, 1)")
        return cls(**kwargs)  # type: ignore[arg-type]

    @property
    def is_faulty(self) -> bool:
        return self.drop_rate > 0 or self.dup_rate > 0 or self.reorder_rate > 0

    def describe(self) -> str:
        return (
            f"drop={self.drop_rate:g} dup={self.dup_rate:g} "
            f"reorder={self.reorder_rate:g} delay={self.delay_us:g}us seed={self.seed}"
        )


@dataclass(slots=True)
class ChannelStats:
    """Per-channel delivery counters (live-report / CLI observability)."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    #: retransmissions initiated by the reliable transport
    retried: int = 0
    #: deliveries that arrived after the server had already accepted the
    #: same sequence number (redundant copies and stale retries)
    late: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "retried": self.retried,
            "late": self.late,
        }

    def describe(self) -> str:
        return (
            f"sent={self.sent} delivered={self.delivered} dropped={self.dropped} "
            f"retried={self.retried} duplicated={self.duplicated} "
            f"reordered={self.reordered} late={self.late}"
        )


@dataclass(frozen=True, slots=True)
class Envelope:
    """One in-flight copy of a batch."""

    rank: int
    seq: int
    payload: tuple
    sent_at: float
    deliver_at: float
    #: True for channel-created duplicate copies
    is_copy: bool = False
    #: tenant dimension — sequence numbers are only unique per (job, rank)
    job: int = 0


@dataclass(slots=True)
class LossyChannel:
    """Seeded unreliable in-memory channel between ranks and the server.

    Messages are held in a delivery heap keyed by virtual arrival time;
    :meth:`deliver_due` releases everything due by ``now`` in arrival
    order.  With an all-zero config this degrades to a perfectly reliable
    FIFO channel with fixed latency.
    """

    config: ChannelConfig = field(default_factory=ChannelConfig)
    stats: ChannelStats = field(default_factory=ChannelStats)
    _rng: random.Random = field(default_factory=random.Random)
    _heap: list[tuple[float, int, Envelope]] = field(default_factory=list)
    _order: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.config.seed)

    # -- sending -----------------------------------------------------------

    def send(self, rank: int, seq: int, payload: tuple, now: float, job: int = 0) -> None:
        """Submit one batch copy; the channel decides its fate."""
        self.stats.sent += 1
        if self._rng.random() < self.config.drop_rate:
            self.stats.dropped += 1
        else:
            self._enqueue(rank, seq, payload, now, is_copy=False, job=job)
        if self.config.dup_rate and self._rng.random() < self.config.dup_rate:
            self.stats.duplicated += 1
            self._enqueue(rank, seq, payload, now, is_copy=True, job=job)

    def _enqueue(
        self, rank: int, seq: int, payload: tuple, now: float, is_copy: bool, job: int = 0
    ) -> None:
        delay = self.config.delay_us
        if self.config.jitter_us:
            delay += self._rng.random() * self.config.jitter_us
        if self.config.reorder_rate and self._rng.random() < self.config.reorder_rate:
            self.stats.reordered += 1
            delay += self._rng.random() * self.config.reorder_delay_us
        envelope = Envelope(
            rank=rank, seq=seq, payload=payload, sent_at=now,
            deliver_at=now + delay, is_copy=is_copy, job=job,
        )
        heapq.heappush(self._heap, (envelope.deliver_at, self._order, envelope))
        self._order += 1

    # -- receiving ---------------------------------------------------------

    def deliver_due(self, now: float) -> list[Envelope]:
        """Pop every envelope whose arrival time has passed, in order."""
        out: list[Envelope] = []
        while self._heap and self._heap[0][0] <= now:
            out.append(heapq.heappop(self._heap)[2])
        self.stats.delivered += len(out)
        return out

    def pending(self) -> int:
        return len(self._heap)

    def next_due(self) -> float | None:
        """Arrival time of the earliest in-flight envelope, if any."""
        return self._heap[0][0] if self._heap else None


def perfect_channel(delay_us: float = 0.0) -> LossyChannel:
    """A fault-free channel (useful as a test/control transport)."""
    return LossyChannel(config=ChannelConfig(delay_us=delay_us))


def with_seed(config: ChannelConfig, seed: int) -> ChannelConfig:
    """The same fault model with a different failure schedule."""
    return replace(config, seed=seed)
