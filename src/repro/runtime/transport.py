"""Transports between ranks and the analysis server (§5.4).

The paper: data reaches the analysis server "by processes sending messages
to analysis-server or by updating shared files."  The default path in this
package is direct in-memory delivery (the message analogue).  This module
adds the two hardened alternatives:

* :class:`FileSpool` — the shared-file path.  Each rank appends binary
  frames to its own spool file; the server drains the spools, either
  periodically during the run or once at the end.  The spool persists the
  dynamic-rule group string table inline (a fresh reader process decodes
  groups without the writer's memory) and a drain only ever consumes
  complete frames, so a truncated tail — a writer caught mid-append —
  is left for the next drain instead of corrupting the stream.
* :class:`ReliableTransport` — the message path over an unreliable
  channel (:mod:`repro.runtime.channel`).  Batches carry per-rank
  sequence numbers; unacknowledged batches are retransmitted on timeout
  with exponential backoff, and the server's watermark-based ingest
  deduplicates the redeliveries.  Delivery guarantee: at-least-once on
  the wire, exactly-once effect in the matrices.  Ranks whose batches
  exhaust their retry budget are marked *degraded* on the server instead
  of crashing the run.

The record wire format matches ``SliceSummary``'s accounted size, so the
§6.4 volume numbers are transport-independent.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.runtime.channel import LossyChannel
from repro.runtime.records import SliceSummary
from repro.runtime.server import AnalysisServer
from repro.sensors.model import SensorType

#: one record: sensor id (u32), slice index (u32), mean duration (f32),
#: count (u16), mean cache miss scaled to u16 — 16 bytes with padding,
#: matching SliceSummary.WIRE_BYTES.
_RECORD = struct.Struct("<IIfHHxx")
_FRAME_HEADER = struct.Struct("<IHH")  # rank (u32), kind (u16), tag (u16)
_GROUP_LEN = struct.Struct("<H")

#: ``kind`` value marking a group-definition frame; record frames carry
#: their (historical) record count of 1 there.
_GROUP_FRAME = 0xFFFF

_TYPE_CODE = {SensorType.COMPUTATION: 0, SensorType.NETWORK: 1, SensorType.IO: 2}
_CODE_TYPE = {v: k for k, v in _TYPE_CODE.items()}


@dataclass(slots=True)
class FileSpool:
    """Rank-side writer plus server-side drainer over a spool directory.

    Writer and reader may be different :class:`FileSpool` instances in
    different processes: the group string table travels inside the spool
    files as definition frames, emitted into each rank's file before the
    first record that uses the group.
    """

    directory: str
    #: optional :class:`~repro.obs.metrics.MetricsRegistry` for spool I/O
    #: counters
    metrics: object | None = None
    #: writer-side intern table (dynamic-rule group strings); code 0 is ""
    _groups: list[str] = field(default_factory=lambda: [""])
    #: writer-side: group codes already defined in each rank's file
    _written_codes: dict[int, set[int]] = field(default_factory=dict)
    #: reader-side: group tables decoded per rank file
    _reader_groups: dict[int, dict[int, str]] = field(default_factory=dict)
    _offsets: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, rank: int) -> str:
        return os.path.join(self.directory, f"rank{rank:05d}.spool")

    def _group_code(self, group: str) -> int:
        try:
            return self._groups.index(group)
        except ValueError:
            self._groups.append(group)
            code = len(self._groups) - 1
            if code > 0x0FFF:
                raise ReproError("spool group table overflow (max 4096 groups)")
            return code

    # -- rank side ---------------------------------------------------------

    def append_batch(self, rank: int, summaries: list[SliceSummary]) -> None:
        """Append one batch to the rank's spool file."""
        written = self._written_codes.setdefault(rank, {0})
        chunks = []
        for s in summaries:
            code = self._group_code(s.group)
            if code not in written:
                written.add(code)
                encoded = s.group.encode("utf-8")
                chunks.append(_FRAME_HEADER.pack(rank, _GROUP_FRAME, code))
                chunks.append(_GROUP_LEN.pack(len(encoded)))
                chunks.append(encoded)
            tag = (_TYPE_CODE[s.sensor_type] << 12) | (code & 0x0FFF)
            chunks.append(_FRAME_HEADER.pack(rank, 1, tag))
            chunks.append(
                _RECORD.pack(
                    s.sensor_id & 0xFFFFFFFF,
                    s.slice_index & 0xFFFFFFFF,
                    float(s.mean_duration),
                    min(s.count, 0xFFFF),
                    int(min(max(s.mean_cache_miss, 0.0), 1.0) * 0xFFFF),
                )
            )
        with open(self._path(rank), "ab") as fh:
            fh.write(b"".join(chunks))
        if self.metrics is not None:
            self.metrics.counter("spool.records_written").inc(len(summaries))

    # -- server side ----------------------------------------------------------

    def drain_into(
        self,
        server: AnalysisServer,
        slice_us: float = 1000.0,
        expected_ranks: int | None = None,
    ) -> int:
        """Read all new spool data into the server; return summaries read.

        With ``expected_ranks`` set, ranks that never produced a spool file
        are marked degraded on the server — a quiet spool must not crash
        (or silently skew) matrix rendering.
        """
        total = 0
        present: set[int] = set()
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".spool"):
                continue
            path = os.path.join(self.directory, name)
            rank = int(name[4:9])
            present.add(rank)
            offset = self._offsets.get(rank, 0)
            with open(path, "rb") as fh:
                fh.seek(offset)
                data = fh.read()
            count, consumed = self._decode_into(server, rank, data, slice_us)
            # Only complete frames advance the offset: a truncated tail is
            # re-read (and by then completed) on the next drain.
            self._offsets[rank] = offset + consumed
            total += count
        if expected_ranks is not None:
            for rank in range(expected_ranks):
                if rank not in present:
                    server.mark_degraded(rank)
        if self.metrics is not None:
            self.metrics.counter("spool.records_drained").inc(total)
        return total

    def _decode_into(
        self, server: AnalysisServer, rank: int, data: bytes, slice_us: float
    ) -> tuple[int, int]:
        """Decode complete frames; return (records decoded, bytes consumed)."""
        groups = self._reader_groups.setdefault(rank, {0: ""})
        pos = 0
        count = 0
        batch: list[SliceSummary] = []
        while pos + _FRAME_HEADER.size <= len(data):
            _rank, kind, tag = _FRAME_HEADER.unpack_from(data, pos)
            body = pos + _FRAME_HEADER.size
            if kind == _GROUP_FRAME:
                if body + _GROUP_LEN.size > len(data):
                    break
                (length,) = _GROUP_LEN.unpack_from(data, body)
                if body + _GROUP_LEN.size + length > len(data):
                    break
                start = body + _GROUP_LEN.size
                groups[tag] = data[start : start + length].decode("utf-8")
                pos = start + length
                continue
            if kind != 1:
                raise ReproError(
                    f"corrupt spool for rank {rank}: unknown frame kind {kind:#x} "
                    f"at offset {self._offsets.get(rank, 0) + pos}"
                )
            if body + _RECORD.size > len(data):
                break
            sensor_id, slice_index, mean_duration, n_records, miss_u16 = _RECORD.unpack_from(
                data, body
            )
            pos = body + _RECORD.size
            batch.append(
                SliceSummary(
                    rank=rank,
                    sensor_id=sensor_id,
                    sensor_type=_CODE_TYPE[tag >> 12],
                    group=groups.get(tag & 0x0FFF, ""),
                    slice_index=slice_index,
                    t_slice_start=slice_index * slice_us,
                    mean_duration=mean_duration,
                    count=n_records,
                    mean_cache_miss=miss_u16 / 0xFFFF,
                )
            )
            count += 1
        if batch:
            server.receive_batch(rank, batch)
        return count, pos


@dataclass(slots=True)
class SpoolingRuntimeMixin:
    """Helper wiring a VSensorRuntime to a FileSpool: replace the direct
    ``server.receive_batch`` delivery with spool writes, then drain."""

    spool: FileSpool
    _direct_server: AnalysisServer | None = None

    def attach(self, runtime) -> None:
        direct_server = runtime.server
        spool = self.spool

        class _SpoolWriter:
            """Duck-typed stand-in for the server on the rank side."""

            batch_period_us = direct_server.batch_period_us

            def receive_batch(self, rank: int, summaries: list[SliceSummary]) -> None:
                spool.append_batch(rank, summaries)

        runtime.server = _SpoolWriter()  # type: ignore[assignment]
        self._direct_server = direct_server

    def finish(self, runtime, slice_us: float = 1000.0) -> AnalysisServer:
        """Drain everything and restore the real server on the runtime."""
        server = self._direct_server
        self.spool.drain_into(server, slice_us=slice_us, expected_ranks=runtime.n_ranks)
        runtime.server = server
        return server


# ---------------------------------------------------------------------------
# Reliable message transport over a lossy channel
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class RetryPolicy:
    """Rank-side retransmission parameters."""

    #: first retransmit after this much virtual time without an ack
    timeout_us: float = 50_000.0
    #: exponential backoff factor per attempt
    backoff: float = 2.0
    #: backoff ceiling
    max_timeout_us: float = 1_600_000.0
    #: total send attempts per batch before the rank is marked degraded
    max_attempts: int = 16

    def retry_delay(self, attempts: int) -> float:
        return min(self.timeout_us * self.backoff ** (attempts - 1), self.max_timeout_us)


@dataclass(slots=True)
class _Pending:
    rank: int
    seq: int
    payload: tuple
    attempts: int
    next_retry_at: float


@dataclass(slots=True)
class ReliableTransport:
    """Sequenced, acked, retrying delivery of rank batches to the server.

    Duck-types the server surface :class:`VSensorRuntime` uses (install
    with ``runtime.server = transport``): rank-side sends go through the
    lossy channel, due envelopes are pumped into the real server, and the
    server's cumulative ack watermark retires in-flight batches.  Acks
    model the server's durable watermark being visible to ranks (the
    shared-file analogue); the simulated faults apply to the data path.
    """

    server: AnalysisServer
    channel: LossyChannel = field(default_factory=LossyChannel)
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: virtual clock: max timestamp observed from sends/pumps
    clock: float = 0.0
    #: batches abandoned after max_attempts, per rank
    gave_up: dict[int, int] = field(default_factory=dict)
    #: optional :class:`~repro.obs.metrics.MetricsRegistry` for delivery
    #: counters; ``None`` keeps the send/pump paths at one branch each
    metrics: object | None = None
    _next_seq: dict[int, int] = field(default_factory=dict)
    _pending: dict[tuple[int, int], _Pending] = field(default_factory=dict)

    @property
    def batch_period_us(self) -> float:
        return self.server.batch_period_us

    # -- rank side ---------------------------------------------------------

    def send_batch(self, rank: int, summaries: list[SliceSummary], now: float) -> int:
        """Assign the next sequence number and launch the batch."""
        self.clock = max(self.clock, now)
        seq = self._next_seq.get(rank, 0)
        self._next_seq[rank] = seq + 1
        payload = tuple(summaries)
        self.channel.send(rank, seq, payload, self.clock)
        self._pending[(rank, seq)] = _Pending(
            rank=rank, seq=seq, payload=payload, attempts=1,
            next_retry_at=self.clock + self.policy.retry_delay(1),
        )
        if self.metrics is not None:
            self.metrics.counter("transport.batches_sent").inc()
        self.pump(self.clock)
        return seq

    def receive_batch(self, rank: int, summaries: list[SliceSummary]) -> None:
        """Server-duck-type entry; infers 'now' from the batch content."""
        now = max((s.t_slice_start for s in summaries), default=self.clock)
        self.send_batch(rank, summaries, max(now, self.clock))

    # -- pump --------------------------------------------------------------

    def pump(self, now: float) -> None:
        """Deliver due envelopes, retire acked batches, retransmit stale ones."""
        self.clock = max(self.clock, now)
        for envelope in self.channel.deliver_due(self.clock):
            accepted = self.server.receive_batch(
                envelope.rank, list(envelope.payload), seq=envelope.seq
            )
            if not accepted:
                self.channel.stats.late += 1
        for key, pending in list(self._pending.items()):
            if self.server.is_acked(pending.rank, pending.seq):
                del self._pending[key]
                if self.metrics is not None:
                    self.metrics.counter("transport.batches_acked").inc()
            elif pending.next_retry_at <= self.clock:
                if pending.attempts >= self.policy.max_attempts:
                    del self._pending[key]
                    self.gave_up[pending.rank] = self.gave_up.get(pending.rank, 0) + 1
                    self.server.mark_degraded(pending.rank)
                    if self.metrics is not None:
                        self.metrics.counter("transport.batches_abandoned").inc()
                    continue
                self.channel.stats.retried += 1
                if self.metrics is not None:
                    self.metrics.counter("transport.retries").inc()
                pending.attempts += 1
                self.channel.send(pending.rank, pending.seq, pending.payload, self.clock)
                pending.next_retry_at = self.clock + self.policy.retry_delay(pending.attempts)

    def unacked(self) -> int:
        return len(self._pending)

    def finish(self) -> AnalysisServer:
        """Drive virtual time forward until every batch is acked or abandoned."""
        while self._pending or self.channel.pending():
            targets = [p.next_retry_at for p in self._pending.values()]
            due = self.channel.next_due()
            if due is not None:
                targets.append(due)
            if not targets:
                break
            self.pump(max(self.clock, min(targets)))
        return self.server

    # -- server duck-typing for live reporting -----------------------------

    def performance_matrix(self, sensor_type):
        return self.server.performance_matrix(sensor_type)

    def mean_rank_performance(self, sensor_type):
        return self.server.mean_rank_performance(sensor_type)

    def detect_inter_process(self, min_ranks: int = 2):
        return self.server.detect_inter_process(min_ranks)
