"""Transports between ranks and the analysis server (§5.4).

The paper: data reaches the analysis server "by processes sending messages
to analysis-server or by updating shared files."  The default path in this
package is direct in-memory delivery (the message analogue).  This module
adds the shared-file alternative: each rank appends binary batches to its
own spool file; the server drains the spools, either periodically during
the run or once at the end.  The wire format matches ``SliceSummary``'s
accounted size, so the §6.4 volume numbers are transport-independent.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field

from repro.runtime.records import SliceSummary
from repro.runtime.server import AnalysisServer
from repro.sensors.model import SensorType

#: one record: sensor id (u32), slice index (u32), mean duration (f32),
#: count (u16), mean cache miss scaled to u16 — 16 bytes with padding,
#: matching SliceSummary.WIRE_BYTES.
_RECORD = struct.Struct("<IIfHHxx")
_BATCH_HEADER = struct.Struct("<IHH")  # rank (u32), n (u16), type+group tag


_TYPE_CODE = {SensorType.COMPUTATION: 0, SensorType.NETWORK: 1, SensorType.IO: 2}
_CODE_TYPE = {v: k for k, v in _TYPE_CODE.items()}


@dataclass(slots=True)
class FileSpool:
    """Rank-side writer plus server-side drainer over a spool directory."""

    directory: str
    #: group names are interned per spool (dynamic-rule group strings)
    _groups: list[str] = field(default_factory=lambda: [""])
    _offsets: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, rank: int) -> str:
        return os.path.join(self.directory, f"rank{rank:05d}.spool")

    def _group_code(self, group: str) -> int:
        try:
            return self._groups.index(group)
        except ValueError:
            self._groups.append(group)
            return len(self._groups) - 1

    # -- rank side ---------------------------------------------------------

    def append_batch(self, rank: int, summaries: list[SliceSummary]) -> None:
        """Append one batch to the rank's spool file."""
        chunks = []
        for s in summaries:
            tag = (_TYPE_CODE[s.sensor_type] << 12) | (self._group_code(s.group) & 0x0FFF)
            chunks.append(_BATCH_HEADER.pack(rank, 1, tag))
            chunks.append(
                _RECORD.pack(
                    s.sensor_id & 0xFFFFFFFF,
                    s.slice_index & 0xFFFFFFFF,
                    float(s.mean_duration),
                    min(s.count, 0xFFFF),
                    int(min(max(s.mean_cache_miss, 0.0), 1.0) * 0xFFFF),
                )
            )
        with open(self._path(rank), "ab") as fh:
            fh.write(b"".join(chunks))

    # -- server side ----------------------------------------------------------

    def drain_into(self, server: AnalysisServer, slice_us: float = 1000.0) -> int:
        """Read all new spool data into the server; return summaries read."""
        total = 0
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".spool"):
                continue
            path = os.path.join(self.directory, name)
            rank = int(name[4:9])
            offset = self._offsets.get(rank, 0)
            with open(path, "rb") as fh:
                fh.seek(offset)
                data = fh.read()
            self._offsets[rank] = offset + len(data)
            total += self._decode_into(server, rank, data, slice_us)
        return total

    def _decode_into(
        self, server: AnalysisServer, rank: int, data: bytes, slice_us: float
    ) -> int:
        pos = 0
        count = 0
        batch: list[SliceSummary] = []
        while pos + _BATCH_HEADER.size + _RECORD.size <= len(data):
            _rank, _n, tag = _BATCH_HEADER.unpack_from(data, pos)
            pos += _BATCH_HEADER.size
            sensor_id, slice_index, mean_duration, n_records, miss_u16 = _RECORD.unpack_from(
                data, pos
            )
            pos += _RECORD.size
            group_code = tag & 0x0FFF
            group = self._groups[group_code] if group_code < len(self._groups) else ""
            batch.append(
                SliceSummary(
                    rank=rank,
                    sensor_id=sensor_id,
                    sensor_type=_CODE_TYPE[tag >> 12],
                    group=group,
                    slice_index=slice_index,
                    t_slice_start=slice_index * slice_us,
                    mean_duration=mean_duration,
                    count=n_records,
                    mean_cache_miss=miss_u16 / 0xFFFF,
                )
            )
            count += 1
        if batch:
            server.receive_batch(rank, batch)
        return count


@dataclass(slots=True)
class SpoolingRuntimeMixin:
    """Helper wiring a VSensorRuntime to a FileSpool: replace the direct
    ``server.receive_batch`` delivery with spool writes, then drain."""

    spool: FileSpool
    _direct_server: AnalysisServer | None = None

    def attach(self, runtime) -> None:
        direct_server = runtime.server
        spool = self.spool

        class _SpoolWriter:
            """Duck-typed stand-in for the server on the rank side."""

            batch_period_us = direct_server.batch_period_us

            def receive_batch(self, rank: int, summaries: list[SliceSummary]) -> None:
                spool.append_batch(rank, summaries)

        runtime.server = _SpoolWriter()  # type: ignore[assignment]
        self._direct_server = direct_server

    def finish(self, runtime, slice_us: float = 1000.0) -> AnalysisServer:
        """Drain everything and restore the real server on the runtime."""
        server = self._direct_server
        self.spool.drain_into(server, slice_us=slice_us)
        runtime.server = server
        return server
