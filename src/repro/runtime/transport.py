"""Transports between ranks and the analysis server (§5.4).

The paper: data reaches the analysis server "by processes sending messages
to analysis-server or by updating shared files."  The default path in this
package is direct in-memory delivery (the message analogue).  This module
adds the two hardened alternatives:

* :class:`FileSpool` — the shared-file path.  Each rank appends binary
  frames to its own spool file; the server drains the spools, either
  periodically during the run or once at the end.  The spool persists the
  dynamic-rule group string table inline (a fresh reader process decodes
  groups without the writer's memory) and a drain only ever consumes
  complete frames, so a truncated tail — a writer caught mid-append —
  is left for the next drain instead of corrupting the stream.
* :class:`ReliableTransport` — the message path over an unreliable
  channel (:mod:`repro.runtime.channel`).  Batches carry per-rank
  sequence numbers; unacknowledged batches are retransmitted on timeout
  with exponential backoff, and the server's watermark-based ingest
  deduplicates the redeliveries.  Delivery guarantee: at-least-once on
  the wire, exactly-once effect in the matrices.  Ranks whose batches
  exhaust their retry budget are marked *degraded* on the server instead
  of crashing the run.

The record wire format matches ``SliceSummary``'s accounted size, so the
§6.4 volume numbers are transport-independent.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.runtime.channel import LossyChannel
from repro.runtime.records import CODE_SENSOR_TYPE, SENSOR_TYPE_CODE, SliceSummary, SummaryColumns
from repro.runtime.server import AnalysisServer

#: one record: sensor id (u32), slice index (u32), mean duration (f32),
#: count (u16), mean cache miss scaled to u16 — 16 bytes with padding,
#: matching SliceSummary.WIRE_BYTES.
_RECORD = struct.Struct("<IIfHHxx")
_FRAME_HEADER = struct.Struct("<IHH")  # rank (u32), kind (u16), tag (u16)
_GROUP_LEN = struct.Struct("<H")

#: ``kind`` value marking a group-definition frame; record frames carry
#: their (historical) record count of 1 there.
_GROUP_FRAME = 0xFFFF

#: one complete record frame (header + packed record) as a structured
#: dtype — lets a drain decode a run of record frames with a single
#: ``np.frombuffer`` view instead of per-record ``struct.unpack_from``
_FRAME_DTYPE = np.dtype(
    [
        ("rank", "<u4"),
        ("kind", "<u2"),
        ("tag", "<u2"),
        ("sensor", "<u4"),
        ("slice", "<u4"),
        ("dur", "<f4"),
        ("count", "<u2"),
        ("miss", "<u2"),
        ("pad", "V2"),
    ]
)
assert _FRAME_DTYPE.itemsize == _FRAME_HEADER.size + _RECORD.size

_TYPE_CODE = SENSOR_TYPE_CODE
_CODE_TYPE = CODE_SENSOR_TYPE


@dataclass(slots=True)
class FileSpool:
    """Rank-side writer plus server-side drainer over a spool directory.

    Writer and reader may be different :class:`FileSpool` instances in
    different processes: the group string table travels inside the spool
    files as definition frames, emitted into each rank's file before the
    first record that uses the group.
    """

    directory: str
    #: optional :class:`~repro.obs.metrics.MetricsRegistry` for spool I/O
    #: counters
    metrics: object | None = None
    #: writer-side intern table (dynamic-rule group strings); code 0 is ""
    _groups: list[str] = field(default_factory=lambda: [""])
    #: writer-side: group codes already defined in each (job, rank) file
    _written_codes: dict[tuple[int, int], set[int]] = field(default_factory=dict)
    #: reader-side: group tables decoded per (job, rank) file
    _reader_groups: dict[tuple[int, int], dict[int, str]] = field(default_factory=dict)
    _offsets: dict[tuple[int, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, rank: int, job: int = 0) -> str:
        # Job 0 keeps the legacy single-tenant file name so existing spool
        # directories (and their byte accounting) decode unchanged; other
        # tenants get their own per-(job, rank) stream.
        if job == 0:
            return os.path.join(self.directory, f"rank{rank:05d}.spool")
        return os.path.join(self.directory, f"job{job:05d}_rank{rank:05d}.spool")

    @staticmethod
    def _parse_name(name: str) -> tuple[int, int] | None:
        """(job, rank) from a spool file name, or None if not a spool."""
        if not name.endswith(".spool"):
            return None
        stem = name[: -len(".spool")]
        if stem.startswith("job"):
            job_part, _, rank_part = stem.partition("_")
            return int(job_part[3:]), int(rank_part[4:])
        return 0, int(stem[4:])

    def _group_code(self, group: str) -> int:
        try:
            return self._groups.index(group)
        except ValueError:
            self._groups.append(group)
            code = len(self._groups) - 1
            if code > 0x0FFF:
                raise ReproError("spool group table overflow (max 4096 groups)")
            return code

    # -- rank side ---------------------------------------------------------

    def append_batch(self, rank: int, summaries: list[SliceSummary]) -> None:
        """Append one batch to the rank's per-job spool file(s).

        The batch is split by ``job_id`` (single-job batches stay one
        write); each (job, rank) stream carries its own group-definition
        frames, so a reader can drain any one tenant independently.
        """
        by_job: dict[int, list[bytes]] = {}
        for s in summaries:
            job = s.job_id
            written = self._written_codes.setdefault((job, rank), {0})
            chunks = by_job.setdefault(job, [])
            code = self._group_code(s.group)
            if code not in written:
                written.add(code)
                encoded = s.group.encode("utf-8")
                chunks.append(_FRAME_HEADER.pack(rank, _GROUP_FRAME, code))
                chunks.append(_GROUP_LEN.pack(len(encoded)))
                chunks.append(encoded)
            tag = (_TYPE_CODE[s.sensor_type] << 12) | (code & 0x0FFF)
            chunks.append(_FRAME_HEADER.pack(rank, 1, tag))
            chunks.append(
                _RECORD.pack(
                    s.sensor_id & 0xFFFFFFFF,
                    s.slice_index & 0xFFFFFFFF,
                    float(s.mean_duration),
                    min(s.count, 0xFFFF),
                    int(min(max(s.mean_cache_miss, 0.0), 1.0) * 0xFFFF),
                )
            )
        for job, chunks in by_job.items():
            with open(self._path(rank, job), "ab") as fh:
                fh.write(b"".join(chunks))
        if self.metrics is not None:
            self.metrics.counter("spool.records_written").inc(len(summaries))

    # -- server side ----------------------------------------------------------

    def drain_into(
        self,
        server: AnalysisServer,
        slice_us: float = 1000.0,
        expected_ranks: int | None = None,
        job: int = 0,
    ) -> int:
        """Read all new spool data for one job into the server.

        Only ``job``'s per-(job, rank) files are touched, so concurrent
        tenants sharing a spool directory drain independently.  With
        ``expected_ranks`` set, ranks that never produced a spool file
        are marked degraded on the server — a quiet spool must not crash
        (or silently skew) matrix rendering.  Returns summaries read.
        """
        total = 0
        present: set[int] = set()
        for name in sorted(os.listdir(self.directory)):
            parsed = self._parse_name(name)
            if parsed is None or parsed[0] != job:
                continue
            rank = parsed[1]
            path = os.path.join(self.directory, name)
            present.add(rank)
            offset = self._offsets.get((job, rank), 0)
            with open(path, "rb") as fh:
                fh.seek(offset)
                data = fh.read()
            count, consumed = self._decode_into(server, rank, data, slice_us, job)
            # Only complete frames advance the offset: a truncated tail is
            # re-read (and by then completed) on the next drain.
            self._offsets[(job, rank)] = offset + consumed
            total += count
        if expected_ranks is not None:
            for rank in range(expected_ranks):
                if rank not in present:
                    server.mark_degraded(rank)
        if self.metrics is not None:
            self.metrics.counter("spool.records_drained").inc(total)
        return total

    def _decode_into(
        self, server: AnalysisServer, rank: int, data: bytes, slice_us: float, job: int = 0
    ) -> tuple[int, int]:
        """Decode complete frames; return (records decoded, bytes consumed).

        Record frames are decoded zero-copy: a maximal run of complete
        record frames becomes one ``np.frombuffer`` structured view over
        ``data`` and goes to the server as column arrays
        (:meth:`AnalysisServer.receive_batch_columns`).  Group-definition
        frames (variable length, rare) stay on the scalar path.  Frame
        boundaries and error behaviour are unchanged: a truncated tail is
        left for the next drain, an unknown frame kind raises.
        """
        groups = self._reader_groups.setdefault((job, rank), {0: ""})
        n = len(data)
        pos = 0
        count = 0
        runs: list[np.ndarray] = []
        while pos + _FRAME_HEADER.size <= n:
            _rank, kind, tag = _FRAME_HEADER.unpack_from(data, pos)
            body = pos + _FRAME_HEADER.size
            if kind == _GROUP_FRAME:
                if body + _GROUP_LEN.size > n:
                    break
                (length,) = _GROUP_LEN.unpack_from(data, body)
                if body + _GROUP_LEN.size + length > n:
                    break
                start = body + _GROUP_LEN.size
                groups[tag] = data[start : start + length].decode("utf-8")
                pos = start + length
                continue
            if kind != 1:
                raise ReproError(
                    f"corrupt spool for rank {rank}: unknown frame kind {kind:#x} "
                    f"at offset {self._offsets.get((job, rank), 0) + pos}"
                )
            whole_frames = (n - pos) // _FRAME_DTYPE.itemsize
            if whole_frames == 0:
                break  # truncated record frame: re-read next drain
            frames = np.frombuffer(data, dtype=_FRAME_DTYPE, count=whole_frames, offset=pos)
            # The run ends at the first non-record frame (group definition
            # or corruption — the outer loop re-examines it byte-wise).
            breaks = np.flatnonzero(frames["kind"] != 1)
            run = int(breaks[0]) if len(breaks) else whole_frames
            runs.append(frames[:run])
            count += run
            pos += run * _FRAME_DTYPE.itemsize
        if count:
            frames = runs[0] if len(runs) == 1 else np.concatenate(runs)
            tags = frames["tag"]
            columns = SummaryColumns(
                rank=rank,
                sensor_id=frames["sensor"].astype(np.int64),
                sensor_type_code=(tags >> 12).astype(np.int64),
                group_code=(tags & 0x0FFF).astype(np.int64),
                group_table=groups,
                slice_index=frames["slice"].astype(np.int64),
                t_slice_start=frames["slice"].astype(np.float64) * slice_us,
                mean_duration=frames["dur"],
                count=frames["count"].astype(np.int64),
                mean_cache_miss=frames["miss"].astype(np.float64) / 0xFFFF,
                job=job,
            )
            server.receive_batch_columns(rank, columns, encoded_bytes=pos)
        return count, pos


@dataclass(slots=True)
class SpoolingRuntimeMixin:
    """Helper wiring a VSensorRuntime to a FileSpool: replace the direct
    ``server.receive_batch`` delivery with spool writes, then drain."""

    spool: FileSpool
    _direct_server: AnalysisServer | None = None

    def attach(self, runtime) -> None:
        direct_server = runtime.server
        spool = self.spool

        class _SpoolWriter:
            """Duck-typed stand-in for the server on the rank side."""

            batch_period_us = direct_server.batch_period_us

            def receive_batch(self, rank: int, summaries: list[SliceSummary]) -> None:
                spool.append_batch(rank, summaries)

        runtime.server = _SpoolWriter()  # type: ignore[assignment]
        self._direct_server = direct_server

    def finish(self, runtime, slice_us: float = 1000.0) -> AnalysisServer:
        """Drain everything and restore the real server on the runtime."""
        server = self._direct_server
        self.spool.drain_into(server, slice_us=slice_us, expected_ranks=runtime.n_ranks)
        runtime.server = server
        return server


# ---------------------------------------------------------------------------
# Reliable message transport over a lossy channel
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class RetryPolicy:
    """Rank-side retransmission parameters."""

    #: first retransmit after this much virtual time without an ack
    timeout_us: float = 50_000.0
    #: exponential backoff factor per attempt
    backoff: float = 2.0
    #: backoff ceiling
    max_timeout_us: float = 1_600_000.0
    #: total send attempts per batch before the rank is marked degraded
    max_attempts: int = 16

    def retry_delay(self, attempts: int) -> float:
        return min(self.timeout_us * self.backoff ** (attempts - 1), self.max_timeout_us)


@dataclass(slots=True)
class _Pending:
    rank: int
    seq: int
    payload: tuple
    attempts: int
    next_retry_at: float
    job: int = 0


@dataclass(slots=True)
class ReliableTransport:
    """Sequenced, acked, retrying delivery of rank batches to the server.

    Duck-types the server surface :class:`VSensorRuntime` uses (install
    with ``runtime.server = transport``): rank-side sends go through the
    lossy channel, due envelopes are pumped into the real server, and the
    server's cumulative ack watermark retires in-flight batches.  Acks
    model the server's durable watermark being visible to ranks (the
    shared-file analogue); the simulated faults apply to the data path.
    """

    server: AnalysisServer
    channel: LossyChannel = field(default_factory=LossyChannel)
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: virtual clock: max timestamp observed from sends/pumps
    clock: float = 0.0
    #: batches abandoned after max_attempts, per rank
    gave_up: dict[int, int] = field(default_factory=dict)
    #: optional :class:`~repro.obs.metrics.MetricsRegistry` for delivery
    #: counters; ``None`` keeps the send/pump paths at one branch each
    metrics: object | None = None
    #: tenant this transport carries; stamped on every envelope so several
    #: jobs' transports can share a channel into one ingest front
    job_id: int = 0
    _next_seq: dict[tuple[int, int], int] = field(default_factory=dict)
    _pending: dict[tuple[int, int, int], _Pending] = field(default_factory=dict)
    #: group strings already encoded once per (job, rank) stream (codec
    #: state: a group definition frame goes on the wire only before its
    #: first use)
    _sent_groups: dict[tuple[int, int], set[str]] = field(default_factory=dict)
    #: encoded wire size per (job, rank, seq) — retransmissions reuse it,
    #: so a redelivered batch is accounted at exactly its original size
    _encoded: dict[tuple[int, int, int], int] = field(default_factory=dict)

    @property
    def batch_period_us(self) -> float:
        return self.server.batch_period_us

    def _encoded_size(self, rank: int, summaries: tuple | list) -> int:
        """Wire size of the batch under the spool codec (headers + group
        definition frames included) — what ``bytes_received`` accounts."""
        sent = self._sent_groups.setdefault((self.job_id, rank), {""})
        size = 0
        for s in summaries:
            if s.group not in sent:
                sent.add(s.group)
                size += _FRAME_HEADER.size + _GROUP_LEN.size + len(s.group.encode("utf-8"))
            size += _FRAME_HEADER.size + _RECORD.size
        return size

    # -- rank side ---------------------------------------------------------

    def send_batch(self, rank: int, summaries: list[SliceSummary], now: float) -> int:
        """Assign the next sequence number and launch the batch."""
        self.clock = max(self.clock, now)
        job = self.job_id
        seq = self._next_seq.get((job, rank), 0)
        self._next_seq[(job, rank)] = seq + 1
        payload = tuple(summaries)
        self._encoded[(job, rank, seq)] = self._encoded_size(rank, payload)
        self.channel.send(rank, seq, payload, self.clock, job=job)
        self._pending[(job, rank, seq)] = _Pending(
            rank=rank, seq=seq, payload=payload, attempts=1,
            next_retry_at=self.clock + self.policy.retry_delay(1), job=job,
        )
        if self.metrics is not None:
            self.metrics.counter("transport.batches_sent").inc()
        self.pump(self.clock)
        return seq

    def receive_batch(self, rank: int, summaries: list[SliceSummary]) -> None:
        """Server-duck-type entry; infers 'now' from the batch content."""
        now = max((s.t_slice_start for s in summaries), default=self.clock)
        self.send_batch(rank, summaries, max(now, self.clock))

    # -- pump --------------------------------------------------------------

    def pump(self, now: float) -> None:
        """Deliver due envelopes, retire acked batches, retransmit stale ones."""
        self.clock = max(self.clock, now)
        for envelope in self.channel.deliver_due(self.clock):
            accepted = self.server.receive_batch(
                envelope.rank,
                list(envelope.payload),
                seq=envelope.seq,
                encoded_bytes=self._encoded.get((envelope.job, envelope.rank, envelope.seq)),
            )
            if not accepted:
                # An admission-controlled server (the sharded front) can
                # attach a retry-after hint to a rejection; honoring it
                # re-times the pending retransmit instead of counting the
                # copy as late (the batch was on time — the queue was full).
                retry_at = None
                hint = getattr(self.server, "pop_retry_hint", None)
                if hint is not None:
                    retry_at = hint(envelope.rank, envelope.seq)
                if retry_at is not None:
                    pending = self._pending.get((envelope.job, envelope.rank, envelope.seq))
                    if pending is not None:
                        pending.next_retry_at = max(pending.next_retry_at, retry_at)
                    if self.metrics is not None:
                        self.metrics.counter("transport.backpressure_deferred").inc()
                else:
                    self.channel.stats.late += 1
        for key, pending in list(self._pending.items()):
            if self.server.is_acked(pending.rank, pending.seq):
                del self._pending[key]
                if self.metrics is not None:
                    self.metrics.counter("transport.batches_acked").inc()
            elif pending.next_retry_at <= self.clock:
                if pending.attempts >= self.policy.max_attempts:
                    del self._pending[key]
                    self.gave_up[pending.rank] = self.gave_up.get(pending.rank, 0) + 1
                    self.server.mark_degraded(pending.rank)
                    if self.metrics is not None:
                        self.metrics.counter("transport.batches_abandoned").inc()
                    continue
                self.channel.stats.retried += 1
                if self.metrics is not None:
                    self.metrics.counter("transport.retries").inc()
                pending.attempts += 1
                self.channel.send(
                    pending.rank, pending.seq, pending.payload, self.clock, job=pending.job
                )
                pending.next_retry_at = self.clock + self.policy.retry_delay(pending.attempts)

    def unacked(self) -> int:
        return len(self._pending)

    def finish(self) -> AnalysisServer:
        """Drive virtual time forward until every batch is acked or abandoned."""
        while self._pending or self.channel.pending():
            targets = [p.next_retry_at for p in self._pending.values()]
            due = self.channel.next_due()
            if due is not None:
                targets.append(due)
            if not targets:
                break
            self.pump(max(self.clock, min(targets)))
        return self.server

    # -- server duck-typing for live reporting -----------------------------

    def performance_matrix(self, sensor_type):
        return self.server.performance_matrix(sensor_type)

    def mean_rank_performance(self, sensor_type):
        return self.server.mean_rank_performance(sensor_type)

    def detect_inter_process(self, min_ranks: int = 2):
        return self.server.detect_inter_process(min_ranks)
