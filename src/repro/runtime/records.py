"""Record types flowing through the dynamic module."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sensors.model import SensorType


@dataclass(frozen=True, slots=True)
class SensorRecord:
    """One Tick..Tock execution of a v-sensor on one rank."""

    rank: int
    sensor_id: int
    sensor_type: SensorType
    t_start: float
    t_end: float
    instructions: float
    cache_miss_rate: float
    #: dynamic-rule group key; "" until grouped
    group: str = ""

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True, slots=True)
class SliceSummary:
    """Average behaviour of one sensor (group) during one time slice.

    This is the unit of storage and of communication with the analysis
    server: instead of a long record list, only slice summaries exist
    (§5.1) — and per sensor only a scalar standard time is kept as history
    (§5.3).
    """

    rank: int
    sensor_id: int
    sensor_type: SensorType
    group: str
    slice_index: int
    t_slice_start: float
    mean_duration: float
    count: int
    mean_cache_miss: float

    #: serialized size in bytes when sent to the analysis server: sensor id
    #: (4) + slice (4) + duration (4) + count (2) + miss rate (2)
    WIRE_BYTES = 16

    @property
    def identity(self) -> tuple[int, int, str, int]:
        """Dedup key for idempotent server ingest: a rank emits at most one
        summary per (sensor, group, slice), so redelivery is detectable
        without any transport metadata."""
        return (self.rank, self.sensor_id, self.group, self.slice_index)
