"""Record types flowing through the dynamic module."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensors.model import SensorType

#: wire codes for sensor types — shared by the spool codec and the columnar
#: analysis store so decoded batches never need enum objects per row
SENSOR_TYPE_CODE = {SensorType.COMPUTATION: 0, SensorType.NETWORK: 1, SensorType.IO: 2}
CODE_SENSOR_TYPE = {code: stype for stype, code in SENSOR_TYPE_CODE.items()}


@dataclass(frozen=True, slots=True)
class SensorRecord:
    """One Tick..Tock execution of a v-sensor on one rank."""

    rank: int
    sensor_id: int
    sensor_type: SensorType
    t_start: float
    t_end: float
    instructions: float
    cache_miss_rate: float
    #: dynamic-rule group key; "" until grouped
    group: str = ""

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True, slots=True)
class SliceSummary:
    """Average behaviour of one sensor (group) during one time slice.

    This is the unit of storage and of communication with the analysis
    server: instead of a long record list, only slice summaries exist
    (§5.1) — and per sensor only a scalar standard time is kept as history
    (§5.3).
    """

    rank: int
    sensor_id: int
    sensor_type: SensorType
    group: str
    slice_index: int
    t_slice_start: float
    mean_duration: float
    count: int
    mean_cache_miss: float
    #: tenant dimension — which concurrently running job produced this
    #: summary.  0 is the single-job default; the sharded analysis service
    #: keys its routing, spool files and sequence streams by it.
    job_id: int = 0

    #: serialized size in bytes when sent to the analysis server: sensor id
    #: (4) + slice (4) + duration (4) + count (2) + miss rate (2)
    WIRE_BYTES = 16

    @property
    def identity(self) -> tuple[int, int, str, int]:
        """Dedup key for idempotent server ingest: a rank emits at most one
        summary per (sensor, group, slice), so redelivery is detectable
        without any transport metadata.  The job dimension is deliberately
        absent: one analysis store holds one tenant's records, and the
        service layer routes by ``job_id`` before ingest."""
        return (self.rank, self.sensor_id, self.group, self.slice_index)


@dataclass(slots=True)
class SummaryColumns:
    """One decoded batch as parallel column arrays (no per-row objects).

    This is what the zero-copy spool decode hands the analysis server:
    every field of :class:`SliceSummary` as one NumPy array, with group
    strings carried as per-row codes plus a ``code -> string`` table.  The
    columnar server ingests the arrays directly; the reference engine
    materializes :class:`SliceSummary` objects via :meth:`to_summaries`
    (bit-identical to the historical per-record ``struct`` decode).
    """

    rank: int
    sensor_id: np.ndarray
    sensor_type_code: np.ndarray
    group_code: np.ndarray
    group_table: dict[int, str]
    slice_index: np.ndarray
    t_slice_start: np.ndarray
    mean_duration: np.ndarray
    count: np.ndarray
    mean_cache_miss: np.ndarray
    #: tenant dimension of the whole batch (spool files are per (job, rank))
    job: int = 0

    def __len__(self) -> int:
        return len(self.sensor_id)

    def to_summaries(self) -> list[SliceSummary]:
        """Materialize per-row objects (reference-engine fallback)."""
        groups = self.group_table
        return [
            SliceSummary(
                rank=self.rank,
                sensor_id=sensor_id,
                sensor_type=CODE_SENSOR_TYPE[type_code],
                group=groups.get(group_code, ""),
                slice_index=slice_index,
                t_slice_start=t_start,
                mean_duration=duration,
                count=count,
                mean_cache_miss=miss,
                job_id=self.job,
            )
            for sensor_id, type_code, group_code, slice_index, t_start, duration, count, miss in zip(
                self.sensor_id.tolist(),
                self.sensor_type_code.tolist(),
                self.group_code.tolist(),
                self.slice_index.tolist(),
                self.t_slice_start.tolist(),
                self.mean_duration.astype(np.float64).tolist(),
                self.count.tolist(),
                self.mean_cache_miss.tolist(),
            )
        ]
