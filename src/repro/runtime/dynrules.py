"""Dynamic rules: runtime classification of sensor records (§3.1, §5.3).

A dynamic rule assigns each record a *group* key from information that only
exists at runtime (the canonical example: cache-miss-rate bands).  History
and variance detection then operate per (sensor, group): a slow record in
the low-miss group is a variance even if fast high-miss records exist
(Fig. 13, case 2).
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.runtime.records import SensorRecord


class DynamicRule(Protocol):
    """Assigns a group key to each record."""

    name: str

    def group(self, record: SensorRecord) -> str:
        ...


class NoGrouping:
    """Case 1 of Fig. 13: every metric is expected constant — one group."""

    name = "none"

    def group(self, record: SensorRecord) -> str:
        return ""


class CacheMissBands:
    """Group by cache-miss-rate bands, e.g. [0, 10%), [10%, 20%), ...."""

    def __init__(self, band_width: float = 0.10) -> None:
        if not (0.0 < band_width <= 1.0):
            raise ValueError("band_width must be in (0, 1]")
        self.band_width = band_width
        self.name = f"cache-miss-bands({band_width:.0%})"

    def group(self, record: SensorRecord) -> str:
        band = int(record.cache_miss_rate / self.band_width)
        return f"miss{band}"


class InstructionBands:
    """Group by instruction-count ratio bands (log scale).

    The §5.2 answer for snippets whose workload is data dependent — a loop
    with a runtime trip count executes a different instruction total each
    visit, so raw durations are multi-modal even on a quiet machine.  Two
    records share a group only when their instruction counts are within
    ``band_width`` of each other (bands are powers of ``1 + band_width``),
    so each per-group history sees a near-fixed workload.  External slowdown
    leaves the instruction count — and hence the group — unchanged while
    inflating duration, which is exactly what detection compares.
    """

    def __init__(self, band_width: float = 0.10) -> None:
        if not (0.0 < band_width <= 1.0):
            raise ValueError("band_width must be in (0, 1]")
        self.band_width = band_width
        self.name = f"instruction-bands({band_width:.0%})"

    def group(self, record: SensorRecord) -> str:
        if record.instructions < 1.0:
            return "i0"
        band = int(math.log(record.instructions) / math.log1p(self.band_width))
        return f"i{band}"


class ThresholdMiss:
    """Binary high/low cache-miss grouping (the Fig. 13 presentation)."""

    def __init__(self, threshold: float = 0.5) -> None:
        self.threshold = threshold
        self.name = f"miss-threshold({threshold})"

    def group(self, record: SensorRecord) -> str:
        return "H" if record.cache_miss_rate >= self.threshold else "L"
